type candidate = {
  attribute : Dataguide.path;
  coverage : float;
  uniqueness : float;
  strict : bool;
}

type t = {
  kinds : Node_kind.t;
  by_entity : (Dataguide.path, candidate list) Hashtbl.t;
  key : (Dataguide.path, Dataguide.path) Hashtbl.t;        (* entity -> key attr, with fallback *)
  strict_key : (Dataguide.path, Dataguide.path) Hashtbl.t; (* entity -> strict key attr *)
}

let preferred_names = [ "id"; "key"; "name"; "title" ]

let preference_rank name =
  let rec find i = function
    | [] -> List.length preferred_names
    | n :: rest -> if String.equal n name then i else find (i + 1) rest
  in
  find 0 preferred_names

(* Attribute child paths of an entity path, in path (document) order. *)
let attribute_children kinds entity =
  let guide = Node_kind.dataguide kinds in
  List.filter
    (fun p ->
      Node_kind.kind_of_path kinds p = Node_kind.Attribute
      && Dataguide.parent_path guide p = Some entity)
    (Dataguide.paths guide)

let stats_for kinds entity attribute =
  let guide = Node_kind.dataguide kinds in
  let doc = Node_kind.document kinds in
  let attr_tag = Dataguide.path_tag guide attribute in
  let instances = Dataguide.instances guide entity in
  let n = List.length instances in
  let values = Hashtbl.create (max 16 n) in
  let covered = ref 0 in
  List.iter
    (fun e ->
      (* children of this entity instance on the attribute path *)
      let hits = ref [] in
      Document.iter_children doc e (fun c ->
          if Document.is_element doc c && Document.tag_id doc c = attr_tag then
            hits := c :: !hits);
      match !hits with
      | [ a ] ->
        incr covered;
        Hashtbl.replace values (Node_kind.attribute_value kinds a) ()
      | _ -> ())
    instances;
  let coverage = if n = 0 then 0.0 else float_of_int !covered /. float_of_int n in
  let uniqueness =
    if !covered = 0 then 0.0
    else float_of_int (Hashtbl.length values) /. float_of_int !covered
  in
  {
    attribute;
    coverage;
    uniqueness;
    strict = !covered = n && n > 0 && Hashtbl.length values = !covered;
  }

let better kinds a b =
  (* true when a should rank before b *)
  let guide = Node_kind.dataguide kinds in
  let name p = Dataguide.path_tag_name guide p in
  if a.strict <> b.strict then a.strict
  else if a.uniqueness <> b.uniqueness then a.uniqueness > b.uniqueness
  else if a.coverage <> b.coverage then a.coverage > b.coverage
  else begin
    let ra = preference_rank (name a.attribute) and rb = preference_rank (name b.attribute) in
    if ra <> rb then ra < rb else a.attribute < b.attribute
  end

let mine kinds =
  let by_entity = Hashtbl.create 16 in
  let key = Hashtbl.create 16 in
  let strict_key = Hashtbl.create 16 in
  List.iter
    (fun entity ->
      let cands =
        List.map (stats_for kinds entity) (attribute_children kinds entity)
        |> List.sort (fun a b ->
               if better kinds a b then -1 else if better kinds b a then 1 else 0)
      in
      Hashtbl.replace by_entity entity cands;
      (match List.find_opt (fun c -> c.strict) cands with
      | Some c -> Hashtbl.replace strict_key entity c.attribute
      | None -> ());
      match cands with
      | best :: _ when best.strict -> Hashtbl.replace key entity best.attribute
      | best :: _ when best.coverage >= 0.5 && best.uniqueness >= 0.5 ->
        Hashtbl.replace key entity best.attribute
      | _ -> ())
    (Node_kind.entity_paths kinds);
  { kinds; by_entity; key; strict_key }

let key_path t entity = Hashtbl.find_opt t.key entity

let strict_key_path t entity = Hashtbl.find_opt t.strict_key entity

let candidates t entity = Option.value ~default:[] (Hashtbl.find_opt t.by_entity entity)

let key_of_instance t e =
  let guide = Node_kind.dataguide t.kinds in
  let doc = Node_kind.document t.kinds in
  match key_path t (Dataguide.path_of_node guide e) with
  | None -> None
  | Some key_attr ->
    let attr_tag = Dataguide.path_tag guide key_attr in
    let found = ref None in
    Document.iter_children doc e (fun c ->
        if !found = None && Document.is_element doc c && Document.tag_id doc c = attr_tag
        then found := Some c);
    Option.map (fun a -> a, Node_kind.attribute_value t.kinds a) !found
