(** Key-attribute mining — supporting the paper's Query Result Key
    Identifier (§2.2: "After mining the keys of entities in the data,
    eXtract adds the value of the key attribute of [the return entity] …").

    For every entity path we look for an attribute child path whose values
    (a) exist on every entity instance ({e total coverage}) and (b) are
    pairwise distinct across instances ({e unique}). Among qualifying
    candidates, names conventionally used as identifiers ([id], [key],
    [name], [title]) are preferred, then document order decides.

    When no attribute qualifies as a strict key, [key_path] falls back to
    the most discriminating attribute (highest distinct-value ratio,
    requiring coverage and a ratio of at least 0.5) so that snippets still
    get a best-effort title, mirroring the demo behaviour where every
    result shows a name-like field. *)

type candidate = {
  attribute : Dataguide.path;
  coverage : float;    (** instances with exactly one such attribute / instances *)
  uniqueness : float;  (** distinct values / instances that have the attribute *)
  strict : bool;       (** coverage = 1 and uniqueness = 1 *)
}

type t

val mine : Node_kind.t -> t

val key_path : t -> Dataguide.path -> Dataguide.path option
(** The mined key-attribute path of an entity path. *)

val strict_key_path : t -> Dataguide.path -> Dataguide.path option
(** Only strict keys — no fallback. *)

val candidates : t -> Dataguide.path -> candidate list
(** All attribute children of the entity path with their statistics, best
    first. *)

val key_of_instance : t -> Document.node -> (Document.node * string) option
(** [key_of_instance t e] is the key attribute node of entity instance [e]
    and its value, when the entity's path has a mined key and this instance
    carries it. *)
