(** English suffix stripping (Porter-style, simplified) and a stopword
    list — the usual text-IR normalization the text-snippet baseline and
    the optional stemming index rely on.

    The implementation covers Porter's steps 1a/1b (plural and participle
    endings), the most productive derivational suffixes (-ization, -fulness,
    -ousness, -iveness, -ational, …) and final -e/-y handling, with the
    measure-based guards that keep short words intact ([sky] does not
    become [ski]). It is intentionally not a certified Porter stemmer; the
    property required by the search code is only that inflectional
    variants of the dataset vocabularies collapse ("stores" → "store",
    "fitting" → "fit"). *)

val stem : string -> string
(** Stem one lowercase token. Tokens shorter than 3 characters are
    returned unchanged. *)

val is_stopword : string -> bool
(** Classic English stopword list (articles, pronouns, auxiliaries,
    prepositions). *)

val normalize_tokens : string list -> string list
(** Drop stopwords, stem the rest — the full text-IR pipeline over
    {!Tokenizer.tokens} output. *)
