module Document = Extract_store.Document
module Node_kind = Extract_store.Node_kind
module Result_tree = Extract_search.Result_tree
module Query = Extract_search.Query
module Tokenizer = Extract_store.Tokenizer

let matches_name query name =
  List.exists (fun tok -> Query.mem query tok) (Tokenizer.tokens name)

let entity_instances kinds result =
  let acc = ref [] in
  Result_tree.iter_elements result (fun n ->
      if Node_kind.is_entity kinds n then acc := n :: !acc);
  List.rev !acc

let name_or_attribute_matches kinds result query node =
  let doc = Result_tree.document result in
  matches_name query (Document.tag_name doc node)
  || List.exists
       (fun c ->
         Document.is_element doc c
         && Node_kind.is_attribute kinds c
         && matches_name query (Document.tag_name doc c))
       (Result_tree.children result node)

let highest_entities kinds result =
  let doc = Result_tree.document result in
  entity_instances kinds result
  |> List.filter (fun n ->
         let rec up m =
           match Document.parent doc m with
           | None -> true
           | Some p ->
             if Result_tree.mem result p && Document.is_element doc p
                && Node_kind.is_entity kinds p
             then false
             else up p
         in
         up n)

let return_entities kinds result query =
  let matching =
    entity_instances kinds result
    |> List.filter (name_or_attribute_matches kinds result query)
  in
  match matching with
  | [] -> highest_entities kinds result
  | _ -> matching

let supporting_entities kinds result query =
  let returns = return_entities kinds result query in
  let set = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace set n ()) returns;
  entity_instances kinds result |> List.filter (fun n -> not (Hashtbl.mem set n))
