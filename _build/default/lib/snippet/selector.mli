(** The Instance Selector (paper §2.4) — greedy algorithm.

    Maximizing the number of IList items captured within a bounded snippet
    size is NP-hard (the paper proves it; the companion SIGMOD'08 paper has
    the reduction). The practical algorithm is greedy: walk the IList in
    rank order; an item already covered by the snippet costs nothing;
    otherwise connect the instance with the smallest marginal edge cost,
    skipping the item when even the cheapest instance would overflow the
    bound. Later, cheaper items are still tried — the budget is spent on as
    many items as possible, respecting the ranking. *)

module Document = Extract_store.Document

type covered = {
  entry : Ilist.entry;
  instance : Document.node;  (** the instance that covers the item *)
  cost : int;                (** edges this item added (0 when free) *)
}

type selection = {
  snippet : Snippet_tree.t;
  covered : covered list;      (** rank order *)
  skipped : Ilist.entry list;  (** coverable items that did not fit *)
  uncoverable : Ilist.entry list; (** items with no instance in the result *)
  bound : int;
}

val greedy :
  ?skip_overflow:bool -> bound:int -> Extract_search.Result_tree.t -> Ilist.t -> selection
(** The paper's algorithm. [skip_overflow] (default true) continues past
    items that do not fit, as §2.4 prescribes ("as many items … as
    possible"); [false] is the strict-prefix ablation that stops at the
    first overflowing item. @raise Invalid_argument when [bound < 0]. *)

val covered_count : selection -> int

val coverage : selection -> float
(** covered / coverable items, in [0, 1]; 1.0 when nothing is coverable. *)
