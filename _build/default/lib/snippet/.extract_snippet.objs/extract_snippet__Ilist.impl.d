lib/snippet/ilist.ml: Array Config Extract_search Extract_store Feature Format Hashtbl List Option Query_bias Result_key String
