lib/snippet/corpus.mli: Config Extract_search Pipeline
