lib/snippet/feature.mli: Extract_search Extract_store Format
