lib/snippet/query_bias.mli: Extract_search Extract_store Feature
