lib/snippet/feature.ml: Array Extract_search Extract_store Format Hashtbl List
