lib/snippet/snippet_tree.ml: Array Extract_search Extract_store Extract_util Extract_xml Hashtbl List Printf String
