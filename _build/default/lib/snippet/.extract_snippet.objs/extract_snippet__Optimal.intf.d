lib/snippet/optimal.mli: Extract_search Ilist Selector
