lib/snippet/pipeline.ml: Array Differentiator Domain Extract_search Extract_store Feature Fun Ilist List Selector
