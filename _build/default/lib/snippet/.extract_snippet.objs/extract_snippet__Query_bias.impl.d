lib/snippet/query_bias.ml: Extract_search Extract_store Feature Hashtbl List
