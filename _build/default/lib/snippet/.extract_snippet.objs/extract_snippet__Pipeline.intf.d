lib/snippet/pipeline.mli: Config Extract_search Extract_store Ilist Selector
