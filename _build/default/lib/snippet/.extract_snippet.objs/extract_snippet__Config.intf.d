lib/snippet/config.mli:
