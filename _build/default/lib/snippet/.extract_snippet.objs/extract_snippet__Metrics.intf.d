lib/snippet/metrics.mli: Format Ilist Pipeline Snippet_tree
