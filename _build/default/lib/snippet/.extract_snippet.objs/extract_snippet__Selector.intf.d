lib/snippet/selector.mli: Extract_search Extract_store Ilist Snippet_tree
