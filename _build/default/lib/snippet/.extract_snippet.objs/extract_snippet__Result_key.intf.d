lib/snippet/result_key.mli: Extract_search Extract_store
