lib/snippet/differentiator.ml: Feature Hashtbl Ilist List Option
