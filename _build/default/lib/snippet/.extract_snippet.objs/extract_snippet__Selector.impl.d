lib/snippet/selector.ml: Array Extract_store Ilist List Snippet_tree
