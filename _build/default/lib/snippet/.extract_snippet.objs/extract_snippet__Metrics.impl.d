lib/snippet/metrics.ml: Extract_store Feature Format Ilist List Pipeline Snippet_tree
