lib/snippet/result_key.ml: Extract_search Extract_store List Return_entity
