lib/snippet/snippet_tree.mli: Extract_search Extract_store Extract_util Extract_xml
