lib/snippet/naive_baseline.mli: Extract_search Snippet_tree
