lib/snippet/text_baseline.mli: Extract_search
