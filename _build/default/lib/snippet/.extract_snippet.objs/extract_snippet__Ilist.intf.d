lib/snippet/ilist.mli: Config Extract_search Extract_store Feature Format
