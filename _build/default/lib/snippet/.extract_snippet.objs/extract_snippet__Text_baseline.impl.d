lib/snippet/text_baseline.ml: Array Extract_search Extract_store Hashtbl List Option String
