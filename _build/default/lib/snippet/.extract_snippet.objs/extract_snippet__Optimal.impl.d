lib/snippet/optimal.ml: Array Extract_store Hashtbl Ilist List Selector Snippet_tree
