lib/snippet/html_view.mli: Extract_search Pipeline Snippet_tree
