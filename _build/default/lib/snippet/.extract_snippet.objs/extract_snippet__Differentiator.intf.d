lib/snippet/differentiator.mli: Feature Ilist
