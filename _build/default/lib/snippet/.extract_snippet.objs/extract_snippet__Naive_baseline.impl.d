lib/snippet/naive_baseline.ml: Extract_search Extract_store List Queue Snippet_tree
