lib/snippet/corpus.ml: Extract_search List Pipeline
