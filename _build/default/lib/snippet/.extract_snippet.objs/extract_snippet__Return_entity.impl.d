lib/snippet/return_entity.ml: Extract_search Extract_store Hashtbl List
