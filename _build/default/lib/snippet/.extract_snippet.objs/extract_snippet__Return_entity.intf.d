lib/snippet/return_entity.mli: Extract_search Extract_store
