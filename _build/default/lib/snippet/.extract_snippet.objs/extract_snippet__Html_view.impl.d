lib/snippet/html_view.ml: Buffer Extract_search Extract_store Ilist List Pipeline Printf Selector Snippet_tree String
