lib/snippet/config.ml:
