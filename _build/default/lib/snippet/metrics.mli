(** Snippet-quality metrics.

    The evaluation (bench E8/E11, EXPERIMENTS.md) judges a snippet by how
    much of the IList's information its visible tokens carry. This module
    is that judge, as a library: token extraction for tree snippets, the
    per-category coverage of one snippet against an IList, and rank-aware
    aggregation. Works for any token list, so the text-window baseline is
    scored by the same code as eXtract's trees. *)

type coverage = {
  keywords : float;      (** covered / present query keywords *)
  entity_names : float;  (** covered / present entity-name items *)
  result_key : float;    (** 1 when the key is shown (or absent), else 0 *)
  features : float;      (** covered / present top-[k] dominant features *)
  all_items : float;     (** covered / all IList items *)
  rank_weighted : float; (** DCG-style: items weighted by 1/log2(rank+2) *)
}

val snippet_tokens : Pipeline.t -> Snippet_tree.t -> string list
(** The tokens a tree snippet displays: tags and immediate text of its
    nodes, normalized like index tokens. *)

val covers : string list -> string -> bool
(** Does a token list display a (possibly multi-token) value? All of the
    value's tokens must appear. *)

val coverage : ?top_features:int -> tokens:string list -> Ilist.t -> coverage
(** Score a snippet's token list against an IList. [top_features] is the
    number of leading dominant features scored in [features]
    (default 3). *)

val pp : Format.formatter -> coverage -> unit
