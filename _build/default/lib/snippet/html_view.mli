(** Static HTML rendering of search results with snippets — the library
    equivalent of the demo's web page (paper §4, Fig. 5).

    The demo site lists, for each query result, its snippet with a link to
    the complete result. [result_page] renders the same layout as one
    self-contained HTML page (inline CSS, no scripts): the query, the size
    bound, each result's snippet as a nested list, the IList as a caption,
    and the full result behind a [<details>] fold — the CLI's [demo]
    command writes it to disk. *)

val escape : string -> string
(** HTML-escape text content. *)

val snippet_to_html : Snippet_tree.t -> string
(** The snippet as a nested [<ul class="snippet">] fragment, values
    inline. *)

val result_tree_to_html : Extract_search.Result_tree.t -> string
(** A (possibly large) result as the same nested-list markup. *)

val result_page :
  ?title:string ->
  query:string ->
  bound:int ->
  Pipeline.snippet_result list ->
  string
(** The complete page. *)

val write_page :
  path:string ->
  ?title:string ->
  query:string ->
  bound:int ->
  Pipeline.snippet_result list ->
  unit
