(** Structure-only snippet baseline: breadth-first truncation.

    Takes the query result and keeps nodes in breadth-first (then document)
    order until the edge bound is reached, ignoring keywords, entities,
    keys and features alike. This is the ablation for the IList ranking:
    any quality eXtract gains over this baseline is attributable to {e
    what} it chooses to show, not to showing a small tree per se. *)

val generate : bound:int -> Extract_search.Result_tree.t -> Snippet_tree.t
(** @raise Invalid_argument when [bound < 0]. *)
