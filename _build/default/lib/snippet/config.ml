type feature_order =
  | By_dominance
  | By_frequency
  | Query_biased

type t = {
  include_entity_names : bool;
  include_result_key : bool;
  include_features : bool;
  feature_order : feature_order;
  max_features : int option;
}

let default =
  {
    include_entity_names = true;
    include_result_key = true;
    include_features = true;
    feature_order = By_dominance;
    max_features = None;
  }

let keywords_only =
  {
    include_entity_names = false;
    include_result_key = false;
    include_features = false;
    feature_order = By_dominance;
    max_features = None;
  }

let string_of_feature_order = function
  | By_dominance -> "dominance"
  | By_frequency -> "frequency"
  | Query_biased -> "query-biased"
