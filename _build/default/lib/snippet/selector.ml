module Document = Extract_store.Document

type covered = {
  entry : Ilist.entry;
  instance : Document.node;
  cost : int;
}

type selection = {
  snippet : Snippet_tree.t;
  covered : covered list;
  skipped : Ilist.entry list;
  uncoverable : Ilist.entry list;
  bound : int;
}

(* The cheapest instance for the entry under the current snippet. Instances
   are in document order; ties keep the first, so selection is
   deterministic. *)
let cheapest snippet (entry : Ilist.entry) =
  Array.fold_left
    (fun best inst ->
      let cost = Snippet_tree.cost_of snippet inst in
      match best with
      | Some (_, best_cost) when best_cost <= cost -> best
      | _ -> Some (inst, cost))
    None entry.instances

let greedy ?(skip_overflow = true) ~bound result ilist =
  if bound < 0 then invalid_arg "Selector.greedy: negative bound";
  let snippet = Snippet_tree.create result in
  let covered = ref [] in
  let skipped = ref [] in
  let uncoverable = ref [] in
  let stopped = ref false in
  List.iter
    (fun (entry : Ilist.entry) ->
      if Array.length entry.instances = 0 then uncoverable := entry :: !uncoverable
      else if !stopped then skipped := entry :: !skipped
      else begin
        match cheapest snippet entry with
        | None -> uncoverable := entry :: !uncoverable
        | Some (instance, cost) ->
          if Snippet_tree.edge_count snippet + cost <= bound then begin
            let added = Snippet_tree.add snippet instance in
            assert (List.length added = cost);
            covered := { entry; instance; cost } :: !covered
          end
          else begin
            skipped := entry :: !skipped;
            (* strict-prefix ablation: a naive reading of §2.4 stops at the
               first item that does not fit instead of trying cheaper,
               lower-ranked ones *)
            if not skip_overflow then stopped := true
          end
      end)
    (Ilist.entries ilist);
  {
    snippet;
    covered = List.rev !covered;
    skipped = List.rev !skipped;
    uncoverable = List.rev !uncoverable;
    bound;
  }

let covered_count s = List.length s.covered

let coverage s =
  let coverable = List.length s.covered + List.length s.skipped in
  if coverable = 0 then 1.0
  else float_of_int (List.length s.covered) /. float_of_int coverable
