module Document = Extract_store.Document
module Tokenizer = Extract_store.Tokenizer

type coverage = {
  keywords : float;
  entity_names : float;
  result_key : float;
  features : float;
  all_items : float;
  rank_weighted : float;
}

let snippet_tokens db snippet =
  let doc = Pipeline.document db in
  Snippet_tree.nodes snippet
  |> List.concat_map (fun n ->
         Tokenizer.tokens (Document.tag_name doc n)
         @ Tokenizer.tokens (Document.immediate_text doc n))

let covers tokens value =
  let needed = Tokenizer.tokens value in
  needed <> [] && List.for_all (fun t -> List.mem t tokens) needed

let ratio hits total = if total = 0 then 1.0 else float_of_int hits /. float_of_int total

let coverage ?(top_features = 3) ~tokens ilist =
  let keywords = ref [] and entities = ref [] and key = ref None and features = ref [] in
  List.iter
    (fun (e : Ilist.entry) ->
      match e.Ilist.item with
      | Ilist.Keyword k -> keywords := k :: !keywords
      | Ilist.Entity_name n -> entities := n :: !entities
      | Ilist.Result_key v -> key := Some v
      | Ilist.Dominant_feature (f, _) -> features := f.Feature.value :: !features)
    (Ilist.entries ilist);
  let keywords = List.rev !keywords and entities = List.rev !entities in
  let features =
    List.filteri (fun i _ -> i < top_features) (List.rev !features)
  in
  let count xs = List.length (List.filter (covers tokens) xs) in
  let displays =
    List.map (fun (e : Ilist.entry) -> Ilist.display e.Ilist.item) (Ilist.entries ilist)
  in
  let dcg keep =
    List.mapi (fun i d -> if keep d then 1.0 /. log (float_of_int (i + 2)) else 0.0) displays
    |> List.fold_left ( +. ) 0.0
  in
  let ideal = dcg (fun _ -> true) in
  {
    keywords = ratio (count keywords) (List.length keywords);
    entity_names = ratio (count entities) (List.length entities);
    result_key =
      (match !key with
      | None -> 1.0
      | Some v -> if covers tokens v then 1.0 else 0.0);
    features = ratio (count features) (List.length features);
    all_items = ratio (count displays) (List.length displays);
    rank_weighted = (if ideal > 0.0 then dcg (covers tokens) /. ideal else 1.0);
  }

let pp ppf c =
  Format.fprintf ppf
    "kw=%.2f entities=%.2f key=%.2f features=%.2f all=%.2f weighted=%.2f" c.keywords
    c.entity_names c.result_key c.features c.all_items c.rank_weighted
