(** Snippet-generation configuration.

    The paper states four goals (§1): snippets should be self-contained
    (entity names), distinguishable (result key), representative (dominant
    features) and small (size bound). This configuration switches each
    content goal on or off — the ablation experiments (bench E11) measure
    what each goal contributes — and selects the feature ranking:

    - [By_dominance] — the paper's normalized dominance score (§2.3);
    - [By_frequency] — raw occurrence counts, the strawman the paper argues
      against;
    - [Query_biased] — dominance multiplied by a query-affinity boost
      (features co-occurring with keyword matches inside the same entity
      instance score higher), the direction of the companion SIGMOD'08
      paper {e Query Biased Snippet Generation in XML Search}. *)

type feature_order =
  | By_dominance
  | By_frequency
  | Query_biased

type t = {
  include_entity_names : bool;  (** goal: self-contained (§2.1) *)
  include_result_key : bool;    (** goal: distinguishable (§2.2) *)
  include_features : bool;      (** goal: representative (§2.3) *)
  feature_order : feature_order;
  max_features : int option;    (** cap on dominant features admitted to the IList *)
}

val default : t
(** All goals on, [By_dominance], no feature cap — the paper's system. *)

val keywords_only : t
(** Every goal off: the IList holds just the query keywords. Baseline for
    the ablation. *)

val string_of_feature_order : feature_order -> string
