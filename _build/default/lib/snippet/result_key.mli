(** Query Result Key Identifier (paper §2.2).

    The key of a query result — its "title", making its snippet
    distinguishable from the other results' — is the value of the mined key
    attribute of a return entity. When several return entities exist, the
    highest (shallowest, then first in document order) instance that
    actually carries a key wins. *)

module Document = Extract_store.Document

type key = {
  entity : Document.node;     (** the return-entity instance *)
  attribute : Document.node;  (** its key attribute node *)
  value : string;
}

val key_of_result :
  Extract_store.Key_miner.t ->
  Extract_store.Node_kind.t ->
  Extract_search.Result_tree.t ->
  Extract_search.Query.t ->
  key option
(** [None] when no return entity carries a mined key. *)
