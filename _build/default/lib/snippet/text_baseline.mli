(** Flat-text snippet baseline — the "Google Desktop" comparison of the
    paper's §4.

    A text search engine ignores XML tags and all structural information:
    the result is flattened to its text content (document order) and the
    snippet is the fixed-width token window containing the largest number
    of distinct query keywords (earliest such window on ties). This is the
    behaviour the demo contrasts eXtract against on its web site.

    To compare budgets with tree snippets, a window of [2 × bound] tokens
    is conventionally equivalent to a tree snippet of [bound] edges (an
    edge of the tree snippet displays about one tag plus one value
    token). *)

type snippet = {
  window : string list;      (** tokens of the chosen window *)
  keyword_hits : int;        (** distinct query keywords inside it *)
  start_offset : int;        (** token offset in the flattened text *)
}

val generate :
  window_tokens:int -> Extract_search.Result_tree.t -> Extract_search.Query.t -> snippet
(** @raise Invalid_argument when [window_tokens <= 0]. *)

val window_for_bound : int -> int
(** The conventional token budget for an edge bound: [2 × bound], at
    least 1. *)

val covers : snippet -> string -> bool
(** Does the window contain the (normalized) token? *)

val to_string : snippet -> string
(** The window joined with spaces, with ellipses when it does not touch
    the text's boundaries. *)
