module Document = Extract_store.Document
module Node_kind = Extract_store.Node_kind
module Key_miner = Extract_store.Key_miner
module Inverted_index = Extract_store.Inverted_index
module Dataguide = Extract_store.Dataguide
module Engine = Extract_search.Engine
module Query = Extract_search.Query
module Result_tree = Extract_search.Result_tree

type t = {
  doc : Document.t;
  guide : Dataguide.t;
  kinds : Node_kind.t;
  keys : Key_miner.t;
  index : Inverted_index.t;
}

let build doc =
  let guide = Dataguide.build doc in
  let kinds = Node_kind.classify guide in
  let keys = Key_miner.mine kinds in
  let index = Inverted_index.build doc in
  { doc; guide; kinds; keys; index }

let of_xml_string s = build (Document.load_string s)

let of_file path = build (Document.load_file path)

(* Rebuild everything derivable cheaply (classification, keys) and reuse
   the persisted index. *)
let of_parts doc index =
  let guide = Dataguide.build doc in
  let kinds = Node_kind.classify guide in
  let keys = Key_miner.mine kinds in
  { doc; guide; kinds; keys; index }

let save path t = Extract_store.Persist.save_bundle path t.doc t.index

let load path =
  let doc, index = Extract_store.Persist.load_bundle path in
  of_parts doc index

let document t = t.doc

let kinds t = t.kinds

let keys t = t.keys

let index t = t.index

let dataguide t = t.guide

type snippet_result = {
  result : Result_tree.t;
  ilist : Ilist.t;
  selection : Selector.selection;
}

let default_bound = 10

let ilist_of ?config t result query =
  Ilist.build ?config t.kinds t.keys t.index result query

let snippet_of ?config ?(bound = default_bound) t result query =
  let ilist = ilist_of ?config t result query in
  let selection = Selector.greedy ~bound result ilist in
  { result; ilist; selection }

let search ?semantics ?limit t query_string =
  let query = Query.of_string query_string in
  Engine.run ?semantics ?limit t.index t.kinds query

let run_differentiated ?semantics ?config ?(bound = default_bound) ?limit t query_string =
  let query = Query.of_string query_string in
  let results = Engine.run ?semantics ?limit t.index t.kinds query in
  let analyses = List.map (Feature.analyze t.kinds) results in
  let differ = Differentiator.make analyses in
  List.map
    (fun result ->
      let ilist = Differentiator.apply differ (ilist_of ?config t result query) in
      let selection = Selector.greedy ~bound result ilist in
      { result; ilist; selection })
    results

let run_ranked ?semantics ?config ?(bound = default_bound) ?limit t query_string =
  let query = Query.of_string query_string in
  let ranker = Extract_search.Ranker.make t.index in
  Engine.run ?semantics t.index t.kinds query
  |> Extract_search.Ranker.rank ranker query
  |> (fun scored ->
       match limit with
       | None -> scored
       | Some k -> List.filteri (fun i _ -> i < k) scored)
  |> List.map (fun (result, score) -> score, snippet_of ?config ~bound t result query)

let run ?semantics ?config ?(bound = default_bound) ?limit t query_string =
  let query = Query.of_string query_string in
  Engine.run ?semantics ?limit t.index t.kinds query
  |> List.map (fun result -> snippet_of ?config ~bound t result query)

(* Per-result snippet generation is embarrassingly parallel: the arena,
   index and classification are immutable after [build], and each result's
   analysis/selection state is local. Results are dealt round-robin across
   domains and reassembled in order. *)
let run_parallel ?semantics ?config ?(bound = default_bound) ?limit ?(domains = 4) t
    query_string =
  let query = Query.of_string query_string in
  let results = Array.of_list (Engine.run ?semantics ?limit t.index t.kinds query) in
  let n = Array.length results in
  let domains = max 1 (min domains n) in
  if domains <= 1 || n <= 1 then
    Array.to_list (Array.map (fun r -> snippet_of ?config ~bound t r query) results)
  else begin
    let out = Array.make n None in
    let worker d () =
      let i = ref d in
      while !i < n do
        out.(!i) <- Some (snippet_of ?config ~bound t results.(!i) query);
        i := !i + domains
      done
    in
    let spawned = List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1))) in
    worker 0 ();
    List.iter Domain.join spawned;
    Array.to_list out |> List.filter_map Fun.id
  end
