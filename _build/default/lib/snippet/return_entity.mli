(** Return Entity Identifier (paper §2.2).

    Every query has a search goal. Entities in a query result split into
    {e return entities} — what the user is looking for — and {e supporting
    entities} that merely describe them. The paper's heuristics, implemented
    here:

    + an entity is a return entity if its tag name matches a keyword, or
      the tag name of one of its attributes matches a keyword;
    + when no entity qualifies, the {e highest} entities of the result
      (those without an entity ancestor inside the result) are the default
      return entities. *)

module Document = Extract_store.Document

val matches_name : Extract_search.Query.t -> string -> bool
(** Token-level test: does a tag name match one of the keywords? *)

val return_entities :
  Extract_store.Node_kind.t ->
  Extract_search.Result_tree.t ->
  Extract_search.Query.t ->
  Document.node list
(** Return-entity instances in the result, document order. Empty only when
    the result contains no entity instance at all. *)

val highest_entities :
  Extract_store.Node_kind.t -> Extract_search.Result_tree.t -> Document.node list
(** Entity instances with no entity ancestor inside the result. *)

val supporting_entities :
  Extract_store.Node_kind.t ->
  Extract_search.Result_tree.t ->
  Extract_search.Query.t ->
  Document.node list
(** Entity instances that are not return entities. *)
