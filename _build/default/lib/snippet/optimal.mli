(** Exact instance selection by branch and bound.

    Explores, item by item in IList order, either skipping the item or
    connecting one of its instances, and keeps the assignment covering the
    most items within the edge bound. Used only to evaluate the greedy
    algorithm's quality (experiment E5) — the problem is NP-hard, so this
    is exponential in the worst case. [max_steps] caps the search; when the
    cap is hit the best solution found so far is returned with
    [exact = false]. *)

type outcome = {
  selection : Selector.selection;
  exact : bool;      (** false when the step cap interrupted the search *)
  steps : int;       (** search-tree nodes explored *)
}

val solve :
  ?max_steps:int -> bound:int -> Extract_search.Result_tree.t -> Ilist.t -> outcome
(** [max_steps] defaults to 2_000_000.
    @raise Invalid_argument when [bound < 0]. *)
