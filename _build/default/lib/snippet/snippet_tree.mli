(** Snippet trees.

    A snippet is a connected subtree of the query result, rooted at the
    result root, built by the Instance Selector. Only element nodes are
    tracked; the text value of a leaf (attribute) element is displayed
    inline with it. The {b size} of a snippet is its number of edges
    (paper §4: "the upper bound of snippet size … is defined as the number
    of edges in the tree"), i.e. element count − 1. *)

module Document = Extract_store.Document

type t

val create : Extract_search.Result_tree.t -> t
(** The minimal snippet: just the result root, 0 edges. *)

val copy : t -> t
(** Independent copy (used by the exact selector's search). *)

val result : t -> Extract_search.Result_tree.t

val mem : t -> Document.node -> bool

val element_count : t -> int

val edge_count : t -> int

val cost_of : t -> Document.node -> int
(** Number of {e new} element nodes (= new edges) needed to connect the
    node to the current snippet: the node itself plus its ancestors up to
    the nearest node already present. 0 when already present.
    @raise Invalid_argument if the node is not an element of the result. *)

val add : t -> Document.node -> Document.node list
(** Connect the node (and its missing ancestors); returns the newly added
    nodes (empty when already present). *)

val remove : t -> Document.node list -> unit
(** Undo an {!add} by removing exactly the nodes it returned. Intended only
    for backtracking in the exact selector; removing arbitrary nodes can
    disconnect the snippet. *)

val nodes : t -> Document.node list
(** Member element nodes, document order. *)

val contains_any : t -> Document.node array -> bool
(** Is any of the candidate instances already in the snippet? *)

val to_pretty : ?max_value:int -> t -> Extract_util.Pretty.tree
(** ASCII-tree rendition with leaf values inline — the Fig. 2 / Fig. 5
    presentation. [max_value] truncates values longer than that many bytes
    with an ellipsis (snippets should stay small even when a value is a
    paragraph); omitted = no truncation. *)

val render : ?max_value:int -> t -> string

val to_xml : t -> Extract_xml.Types.t
(** XML rendition; leaf (attribute) elements keep their text value. *)
