module Document = Extract_store.Document
module Result_tree = Extract_search.Result_tree

let generate ~bound result =
  if bound < 0 then invalid_arg "Naive_baseline.generate: negative bound";
  let doc = Result_tree.document result in
  let snippet = Snippet_tree.create result in
  let queue = Queue.create () in
  Queue.add (Result_tree.root result) queue;
  let continue = ref true in
  while !continue && not (Queue.is_empty queue) do
    let node = Queue.pop queue in
    List.iter
      (fun c ->
        if Document.is_element doc c then begin
          if Snippet_tree.edge_count snippet < bound then begin
            if not (Snippet_tree.mem snippet c) then ignore (Snippet_tree.add snippet c);
            Queue.add c queue
          end
          else continue := false
        end)
      (Result_tree.children result node)
  done;
  snippet
