(** Recursive-schema dataset (Treebank-flavoured): report sections nesting
    into subsections of the same tag.

    Recursive element types are the classic hard case for path-based
    machinery: every nesting depth is a distinct dataguide path of the same
    tag, the DTD declares [section] inside [section], and entities sit
    under entities of the same name. Shape:

    [report/section*] where each [section] has [heading], [pagecount],
    optional [para]* and recursive [section]* children down to
    [max_depth]. Headings are unique (the mined key). Carries a DTD. *)

type config = {
  seed : int;
  top_sections : int;
  max_depth : int;    (** recursion depth below the top sections *)
  fanout : int;       (** max subsections per section *)
}

val default : config
(** seed 29, 6 top sections, depth 4, fanout 3. *)

val generate : config -> Extract_xml.Types.document

val sized : ?seed:int -> int -> Extract_xml.Types.document
(** [sized n] targets roughly [n] sections. *)
