(** The paper's running example, reconstructed exactly.

    Figure 1 shows part of one query result for "Texas apparel retailer"
    plus its value-occurrence statistics; §2.3 works out the dominance
    scores by hand. Those numbers pin the result down:

    - 10 stores, all in Texas: Houston ×6, Austin ×1, three other cities
      ×1 → [D(store, city) = 5], [DS(Houston) = 6 / (10/5) = 3.0];
    - clothes with [N(clothes, category) = 1070] over 11 distinct
      categories (outwear 220, suit 120, skirt 80, sweaters 70, seven
      others totalling 580) → [DS(outwear) ≈ 2.2], [DS(suit) ≈ 1.2];
    - [N(clothes, fitting) = 1000] over man 600 / woman 360 / children 40
      → [DS(man) = 1.8], [DS(woman) ≈ 1.1];
    - [N(clothes, situation) = 1000] over casual 700 / formal 300 →
      [DS(casual) = 1.4].

    The generated document contains the Brook Brothers retailer with
    exactly these statistics plus two non-Texas retailers, so the query
    has a single result and the IList of Fig. 3 is reproduced verbatim.
    The regression tests in [test/test_paper_example.ml] assert all of the
    above. *)

val query : string
(** ["Texas apparel retailer"]. *)

val expected_ilist : string list
(** Fig. 3: Texas, apparel, retailer, clothes, store, Brook Brothers,
    Houston, outwear, man, casual, suit, woman. *)

val expected_scores : (string * float) list
(** The §2.3 hand-computed dominance scores, keyed by feature value
    (two-decimal precision: Houston 3.0, outwear 2.21, man 1.8, casual
    1.4, suit 1.21, woman 1.08). *)

val document : ?with_dtd:bool -> unit -> Extract_xml.Types.document
(** The full document. [with_dtd] (default true) attaches the DTD internal
    subset so the *-node inference can be exercised through either path. *)

val store_count : int

val clothes_count : int
