module Prng = Extract_util.Prng
module Zipf = Extract_util.Zipf

type config = {
  seed : int;
  regions : int;
  items_per_region : int;
  people : int;
  auctions : int;
  skew : float;
}

let default = { seed = 11; regions = 4; items_per_region = 15; people = 25; auctions = 30; skew = 1.0 }

let dtd_subset =
  "\n\
  \  <!ELEMENT site (regions, people, auctions)>\n\
  \  <!ELEMENT regions (region*)>\n\
  \  <!ELEMENT region (name, item*)>\n\
  \  <!ELEMENT item (id, title, condition, location, price)>\n\
  \  <!ELEMENT people (person*)>\n\
  \  <!ELEMENT person (id, name, city, payment)>\n\
  \  <!ELEMENT auctions (auction*)>\n\
  \  <!ELEMENT auction (id, itemref, seller, current, bids)>\n\
  \  <!ELEMENT id (#PCDATA)>\n\
  \  <!ELEMENT name (#PCDATA)>\n\
  \  <!ELEMENT title (#PCDATA)>\n\
  \  <!ELEMENT condition (#PCDATA)>\n\
  \  <!ELEMENT location (#PCDATA)>\n\
  \  <!ELEMENT price (#PCDATA)>\n\
  \  <!ELEMENT city (#PCDATA)>\n\
  \  <!ELEMENT payment (#PCDATA)>\n\
  \  <!ELEMENT itemref (#PCDATA)>\n\
  \  <!ELEMENT seller (#PCDATA)>\n\
  \  <!ELEMENT current (#PCDATA)>\n\
  \  <!ELEMENT bids (#PCDATA)>\n"

let region_names = [| "namerica"; "europe"; "asia"; "samerica"; "africa"; "oceania" |]

let item rng ~item_id zipf_cond zipf_city =
  let adjective = Prng.choose rng Names.auction_adjectives in
  let noun = Prng.choose rng Names.auction_items in
  let conditions = [| "used"; "new"; "refurbished"; "damaged" |] in
  Gen.el "item"
    [
      Gen.leaf "id" (Names.unique_label "item" item_id);
      Gen.leaf "title" (Printf.sprintf "%s %s" adjective noun);
      Gen.leaf "condition" (Gen.pick_zipf rng zipf_cond conditions);
      Gen.leaf "location" (Gen.pick_zipf rng zipf_city (Array.sub Names.cities 0 8));
      Gen.leaf "price" (string_of_int (Prng.int_in_range rng ~min:5 ~max:900));
    ]

let person rng ~person_id zipf_pay zipf_city =
  Gen.el "person"
    [
      Gen.leaf "id" (Names.unique_label "person" person_id);
      Gen.leaf "name" (Names.full_name rng);
      Gen.leaf "city" (Gen.pick_zipf rng zipf_city (Array.sub Names.cities 0 8));
      Gen.leaf "payment" (Gen.pick_zipf rng zipf_pay Names.payment_kinds);
    ]

let auction rng cfg ~auction_id =
  let total_items = cfg.regions * cfg.items_per_region in
  Gen.el "auction"
    [
      Gen.leaf "id" (Names.unique_label "auction" auction_id);
      Gen.leaf "itemref" (Names.unique_label "item" (Prng.int rng (max total_items 1)));
      Gen.leaf "seller" (Names.unique_label "person" (Prng.int rng (max cfg.people 1)));
      Gen.leaf "current" (string_of_int (Prng.int_in_range rng ~min:5 ~max:1500));
      Gen.leaf "bids" (string_of_int (Prng.int rng 40));
    ]

let generate cfg =
  let rng = Prng.create cfg.seed in
  let zipf_cond = Zipf.create ~n:4 ~skew:cfg.skew in
  let zipf_city = Zipf.create ~n:8 ~skew:cfg.skew in
  let zipf_pay = Zipf.create ~n:(Array.length Names.payment_kinds) ~skew:cfg.skew in
  let next_item = ref 0 in
  let regions =
    List.init cfg.regions (fun r ->
        let items =
          List.init cfg.items_per_region (fun _ ->
              let id = !next_item in
              incr next_item;
              item rng ~item_id:id zipf_cond zipf_city)
        in
        Gen.el "region" (Gen.leaf "name" region_names.(r mod Array.length region_names) :: items))
  in
  let people = List.init cfg.people (fun i -> person rng ~person_id:i zipf_pay zipf_city) in
  let auctions = List.init cfg.auctions (fun i -> auction rng cfg ~auction_id:i) in
  let root =
    Gen.el "site"
      [ Gen.el "regions" regions; Gen.el "people" people; Gen.el "auctions" auctions ]
  in
  Gen.document ~dtd:dtd_subset root

let sized ?(seed = 11) n =
  let items = max 1 n in
  let regions = max 1 (min 8 (items / 15)) in
  generate
    {
      default with
      seed;
      regions;
      items_per_region = max 1 (items / regions);
      people = max 5 (items / 3);
      auctions = max 5 (items / 2);
    }
