module Prng = Extract_util.Prng

type config = {
  seed : int;
  top_sections : int;
  max_depth : int;
  fanout : int;
}

let default = { seed = 29; top_sections = 6; max_depth = 4; fanout = 3 }

let dtd_subset =
  "\n\
  \  <!ELEMENT report (section*)>\n\
  \  <!ELEMENT section (heading, pagecount, para*, section*)>\n\
  \  <!ELEMENT heading (#PCDATA)>\n\
  \  <!ELEMENT pagecount (#PCDATA)>\n\
  \  <!ELEMENT para (#PCDATA)>\n"

let heading_words =
  [|
    "overview"; "background"; "methods"; "results"; "analysis"; "discussion";
    "implementation"; "evaluation"; "architecture"; "experiments"; "conclusions";
    "appendix";
  |]

let para_sentences =
  [|
    "the measurements were repeated under identical settings";
    "each subsection refines the preceding analysis";
    "the data set is described in the appendix";
    "all timings are medians of five runs";
    "the schema permits arbitrarily nested sections";
  |]

let rec section rng cfg ~depth ~id_counter =
  let id = !id_counter in
  incr id_counter;
  let heading =
    Printf.sprintf "%s %d" (Prng.choose rng heading_words) id
  in
  let paras =
    List.init (Prng.int rng 3) (fun _ -> Gen.leaf "para" (Prng.choose rng para_sentences))
  in
  let subsections =
    if depth >= cfg.max_depth then []
    else
      List.init (Prng.int rng (cfg.fanout + 1)) (fun _ ->
          section rng cfg ~depth:(depth + 1) ~id_counter)
  in
  Gen.el "section"
    ((Gen.leaf "heading" heading
     :: Gen.leaf "pagecount" (string_of_int (Prng.int_in_range rng ~min:1 ~max:40))
     :: paras)
    @ subsections)

let generate cfg =
  let rng = Prng.create cfg.seed in
  let id_counter = ref 0 in
  let sections =
    List.init cfg.top_sections (fun _ -> section rng cfg ~depth:1 ~id_counter)
  in
  Gen.document ~dtd:dtd_subset (Gen.el "report" sections)

let sized ?(seed = 29) n =
  (* expected sections ≈ top × (1 + f/2 + (f/2)^2 + ...) with f/2 = 1.5 for
     the default fanout; scale the top-section count *)
  let top = max 1 (n / 8) in
  generate { default with seed; top_sections = top }
