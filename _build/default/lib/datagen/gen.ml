module Xml = Extract_xml.Types
module Prng = Extract_util.Prng
module Zipf = Extract_util.Zipf

let el tag children = Xml.element tag children

let leaf = Xml.leaf

let expand_counts spec =
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 spec in
  let out = Array.make (max total 1) "" in
  let i = ref 0 in
  List.iter
    (fun (v, c) ->
      for _ = 1 to c do
        out.(!i) <- v;
        incr i
      done)
    spec;
  if total = 0 then [||] else out

let deal items k =
  if k <= 0 then invalid_arg "Gen.deal: k must be positive";
  let groups = Array.make k [] in
  Array.iteri (fun i x -> groups.(i mod k) <- x :: groups.(i mod k)) items;
  Array.map (fun l -> Array.of_list (List.rev l)) groups

let pick_zipf rng zipf arr =
  if Zipf.size zipf <> Array.length arr then
    invalid_arg "Gen.pick_zipf: distribution size mismatch";
  arr.(Zipf.sample zipf rng)

let document ?dtd root =
  match root with
  | Xml.Element e -> { Xml.dtd; root = e }
  | Xml.Text _ -> invalid_arg "Gen.document: the root must be an element"
