(** Auction dataset, XMark-flavoured.

    Shape: [site] containing [regions/region/item]*, [people/person]* and
    [auctions/auction]* — deeper and more heterogeneous than the retail data, with
    cross-referencing values (seller names reference people). Carries a
    DTD. Exercises results whose root is a connection node ([regions]) and
    entities at different depths. *)

type config = {
  seed : int;
  regions : int;
  items_per_region : int;
  people : int;
  auctions : int;
  skew : float;
}

val default : config
(** seed 11, 4 regions × 15 items, 25 people, 30 auctions, skew 1.0. *)

val generate : config -> Extract_xml.Types.document

val sized : ?seed:int -> int -> Extract_xml.Types.document
(** [sized n] targets roughly [n] items overall. *)
