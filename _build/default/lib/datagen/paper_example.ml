module Xml = Extract_xml.Types

let query = "Texas apparel retailer"

let expected_ilist =
  [
    "texas"; "apparel"; "retailer"; "clothes"; "store"; "Brook Brothers"; "Houston";
    "outwear"; "man"; "casual"; "suit"; "woman";
  ]

let expected_scores =
  [
    "Houston", 3.0;
    "outwear", 220.0 /. (1070.0 /. 11.0);
    "man", 1.8;
    "casual", 1.4;
    "suit", 120.0 /. (1070.0 /. 11.0);
    "woman", 360.0 /. (1000.0 /. 3.0);
  ]

let store_count = 10

let clothes_count = 1070

let dtd_subset =
  "\n\
  \  <!ELEMENT retailers (retailer*)>\n\
  \  <!ELEMENT retailer (name, product, store*)>\n\
  \  <!ELEMENT store (name, state, city, merchandises)>\n\
  \  <!ELEMENT merchandises (clothes*)>\n\
  \  <!ELEMENT clothes (category?, situation?, fitting?)>\n\
  \  <!ELEMENT name (#PCDATA)>\n\
  \  <!ELEMENT product (#PCDATA)>\n\
  \  <!ELEMENT state (#PCDATA)>\n\
  \  <!ELEMENT city (#PCDATA)>\n\
  \  <!ELEMENT category (#PCDATA)>\n\
  \  <!ELEMENT situation (#PCDATA)>\n\
  \  <!ELEMENT fitting (#PCDATA)>\n"

(* Value multisets dictated by Figure 1's statistics panel. *)

let city_spec =
  [ "Houston", 6; "Austin", 1; "Dallas", 1; "El Paso", 1; "San Antonio", 1 ]

let category_spec =
  [
    "outwear", 220; "suit", 120; "skirt", 80; "sweaters", 70;
    (* "Other categories (7): 580" *)
    "jeans", 84; "shirts", 83; "dresses", 83; "shorts", 83; "jackets", 83;
    "coats", 82; "vests", 82;
  ]

let fitting_spec = [ "man", 600; "woman", 360; "children", 40 ]

let situation_spec = [ "casual", 700; "formal", 300 ]

let clothes_elements () =
  let categories = Gen.expand_counts category_spec in
  let fittings = Gen.expand_counts fitting_spec in
  let situations = Gen.expand_counts situation_spec in
  assert (Array.length categories = clothes_count);
  (* Interleave so every store receives a mix of values: item [i] takes the
     [i]-th value of each multiset after a fixed stride permutation. *)
  let permuted arr =
    let n = Array.length arr in
    (* stride coprime with n spreads the blocks of equal values *)
    let stride = 7 in
    Array.init n (fun i -> arr.(i * stride mod n))
  in
  let categories = permuted categories in
  let fittings = permuted fittings in
  let situations = permuted situations in
  List.init clothes_count (fun i ->
      let children =
        [ Gen.leaf "category" categories.(i) ]
        @ (if i < Array.length situations then [ Gen.leaf "situation" situations.(i) ] else [])
        @ if i < Array.length fittings then [ Gen.leaf "fitting" fittings.(i) ] else []
      in
      Gen.el "clothes" children)

let brook_brothers () =
  let cities = Gen.expand_counts city_spec in
  let clothes = Array.of_list (clothes_elements ()) in
  let per_store = Gen.deal clothes store_count in
  let stores =
    List.init store_count (fun i ->
        Gen.el "store"
          [
            Gen.leaf "name" Names.store_names.(i);
            Gen.leaf "state" "Texas";
            Gen.leaf "city" cities.(i);
            Gen.el "merchandises" (Array.to_list per_store.(i));
          ])
  in
  Gen.el "retailer" (Gen.leaf "name" "Brook Brothers" :: Gen.leaf "product" "apparel" :: stores)

(* Two retailers outside Texas so the query has exactly one result while
   key mining still sees several retailer instances. *)
let other_retailer ~name ~product ~state ~city ~store_name ~clothes =
  Gen.el "retailer"
    [
      Gen.leaf "name" name;
      Gen.leaf "product" product;
      Gen.el "store"
        [
          Gen.leaf "name" store_name;
          Gen.leaf "state" state;
          Gen.leaf "city" city;
          Gen.el "merchandises"
            (List.map
               (fun (cat, sit, fit) ->
                 Gen.el "clothes"
                   [
                     Gen.leaf "category" cat;
                     Gen.leaf "situation" sit;
                     Gen.leaf "fitting" fit;
                   ])
               clothes);
        ];
    ]

let document ?(with_dtd = true) () =
  let root =
    Gen.el "retailers"
      [
        brook_brothers ();
        other_retailer ~name:"Levis" ~product:"jeans" ~state:"California"
          ~city:"San Francisco" ~store_name:"Union Square"
          ~clothes:[ "jeans", "casual", "man"; "jeans", "casual", "woman" ];
        other_retailer ~name:"ESprit" ~product:"outwear clothing" ~state:"New York"
          ~city:"Brooklyn" ~store_name:"Atlantic Mall"
          ~clothes:[ "outwear", "casual", "woman"; "coats", "formal", "woman" ];
      ]
  in
  Gen.document ?dtd:(if with_dtd then Some dtd_subset else None) root
