(** University course dataset, WSU-flavoured.

    The companion SIGMOD'08 evaluation used the WSU course corpus; this
    generator reproduces its shape: a flat list of course offerings with
    prefix (department), course number, title, credit, schedule (days,
    time, place) and instructor. Course numbers are unique per prefix
    (together they form the mined key via the synthesized [code]
    attribute); departments and buildings are Zipf-skewed. Carries a
    DTD. *)

type config = {
  seed : int;
  courses : int;
  department_pool : int;  (** distinct prefixes *)
  skew : float;
}

val default : config
(** seed 19, 120 courses, 8 departments, skew 1.0. *)

val generate : config -> Extract_xml.Types.document

val sized : ?seed:int -> int -> Extract_xml.Types.document
