(** Query workload generation.

    Benchmark queries must actually have results, so they are built from
    the data: pick an entity instance, combine one of its attribute value
    tokens with its entity tag name and optionally a second value token
    from a sibling attribute — the shape of the paper's queries
    ("Texas apparel retailer" = value + value + entity name). *)

type spec = {
  seed : int;
  queries : int;
  min_keywords : int;
  max_keywords : int;
}

val default : spec
(** seed 3, 20 queries, 2–3 keywords. *)

val generate : spec -> Extract_store.Node_kind.t -> string list
(** Query strings. Entities are sampled deterministically from the
    classified document. Queries that would be empty are skipped, so the
    result can be shorter than [spec.queries] on tiny documents. *)
