module Prng = Extract_util.Prng
module Zipf = Extract_util.Zipf

type config = {
  seed : int;
  courses : int;
  department_pool : int;
  skew : float;
}

let default = { seed = 19; courses = 120; department_pool = 8; skew = 1.0 }

let dtd_subset =
  "\n\
  \  <!ELEMENT courses (course*)>\n\
  \  <!ELEMENT course (code, prefix, crs, title, credit, sessions, instructor)>\n\
  \  <!ELEMENT sessions (session*)>\n\
  \  <!ELEMENT session (days, time, place)>\n\
  \  <!ELEMENT code (#PCDATA)>\n\
  \  <!ELEMENT prefix (#PCDATA)>\n\
  \  <!ELEMENT crs (#PCDATA)>\n\
  \  <!ELEMENT title (#PCDATA)>\n\
  \  <!ELEMENT credit (#PCDATA)>\n\
  \  <!ELEMENT days (#PCDATA)>\n\
  \  <!ELEMENT time (#PCDATA)>\n\
  \  <!ELEMENT place (#PCDATA)>\n\
  \  <!ELEMENT instructor (#PCDATA)>\n"

let departments =
  [| "CS"; "MATH"; "PHYS"; "BIO"; "CHEM"; "ECON"; "HIST"; "ENGL"; "PHIL"; "STAT" |]

let buildings =
  [| "Sloan"; "Todd"; "Heald"; "Webster"; "Fulmer"; "Wilson"; "Carpenter"; "Avery" |]

let day_patterns = [| "MWF"; "TTH"; "MW"; "ARRANGED"; "F" |]

let topics =
  [|
    "Introduction to Programming"; "Data Structures"; "Linear Algebra"; "Organic Chemistry";
    "Microeconomics"; "World History"; "Creative Writing"; "Quantum Mechanics";
    "Genetics"; "Databases"; "Operating Systems"; "Probability"; "Ethics"; "Statistics";
    "Compilers"; "Thermodynamics";
  |]

let session rng zipf_building zipf_days =
  let hour = Prng.int_in_range rng ~min:8 ~max:17 in
  Gen.el "session"
    [
      Gen.leaf "days" (Gen.pick_zipf rng zipf_days day_patterns);
      Gen.leaf "time" (Printf.sprintf "%d:%02d" hour (10 * Prng.int rng 6));
      Gen.leaf "place"
        (Printf.sprintf "%s %d"
           (Gen.pick_zipf rng zipf_building buildings)
           (Prng.int_in_range rng ~min:100 ~max:399));
    ]

let course rng cfg ~course_id zipf_dept zipf_building zipf_days =
  let prefix = (Gen.pick_zipf rng zipf_dept (Array.sub departments 0 cfg.department_pool)) in
  let number = 100 + (course_id mod 400) in
  let sessions =
    List.init (1 + Prng.int rng 2) (fun _ -> session rng zipf_building zipf_days)
  in
  Gen.el "course"
    [
      Gen.leaf "code" (Printf.sprintf "%s-%d-%d" prefix number course_id);
      Gen.leaf "prefix" prefix;
      Gen.leaf "crs" (string_of_int number);
      Gen.leaf "title" (Prng.choose rng topics);
      Gen.leaf "credit" (string_of_int (Prng.int_in_range rng ~min:1 ~max:4));
      Gen.el "sessions" sessions;
      Gen.leaf "instructor" (Names.full_name rng);
    ]

let generate cfg =
  let rng = Prng.create cfg.seed in
  let pool = max 1 (min cfg.department_pool (Array.length departments)) in
  let zipf_dept = Zipf.create ~n:pool ~skew:cfg.skew in
  let zipf_building = Zipf.create ~n:(Array.length buildings) ~skew:cfg.skew in
  let zipf_days = Zipf.create ~n:(Array.length day_patterns) ~skew:cfg.skew in
  let courses =
    List.init cfg.courses (fun i ->
        course rng
          { cfg with department_pool = pool }
          ~course_id:i zipf_dept zipf_building zipf_days)
  in
  Gen.document ~dtd:dtd_subset (Gen.el "courses" courses)

let sized ?(seed = 19) n = generate { default with seed; courses = max 1 n }
