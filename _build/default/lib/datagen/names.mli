(** Vocabularies for the synthetic dataset generators. All arrays are
    immutable by convention — do not mutate. *)

val cities : string array

val states : string array

val store_names : string array

val retailer_names : string array

val clothes_categories : string array

val fittings : string array

val situations : string array

val first_names : string array

val last_names : string array

val movie_adjectives : string array

val movie_nouns : string array

val genres : string array

val studios : string array

val countries : string array

val auction_items : string array

val auction_adjectives : string array

val payment_kinds : string array

val journals : string array

val paper_topic_words : string array

val full_name : Extract_util.Prng.t -> string
(** A random "First Last" name. *)

val movie_title : Extract_util.Prng.t -> string

val unique_label : string -> int -> string
(** [unique_label base i] is ["base-i"] — guaranteed-unique values for key
    attributes. *)
