lib/datagen/bib.mli: Extract_xml
