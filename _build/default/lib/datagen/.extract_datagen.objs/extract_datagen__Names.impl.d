lib/datagen/names.ml: Extract_util Printf
