lib/datagen/retail.ml: Array Extract_util Extract_xml Gen List Names Paper_example
