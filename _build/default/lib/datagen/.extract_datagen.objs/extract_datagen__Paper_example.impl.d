lib/datagen/paper_example.ml: Array Extract_xml Gen List Names
