lib/datagen/movies.mli: Extract_xml
