lib/datagen/gen.mli: Extract_util Extract_xml
