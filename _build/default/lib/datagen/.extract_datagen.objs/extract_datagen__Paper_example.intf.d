lib/datagen/paper_example.mli: Extract_xml
