lib/datagen/nested.ml: Extract_util Gen List Printf
