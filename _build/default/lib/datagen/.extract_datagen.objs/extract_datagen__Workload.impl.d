lib/datagen/workload.ml: Array Extract_store Extract_util Fun List String
