lib/datagen/retail.mli: Extract_xml
