lib/datagen/names.mli: Extract_util
