lib/datagen/gen.ml: Array Extract_util Extract_xml List
