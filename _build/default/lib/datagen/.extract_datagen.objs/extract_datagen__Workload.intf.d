lib/datagen/workload.mli: Extract_store
