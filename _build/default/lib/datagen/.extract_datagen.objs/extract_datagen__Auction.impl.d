lib/datagen/auction.ml: Array Extract_util Gen List Names Printf
