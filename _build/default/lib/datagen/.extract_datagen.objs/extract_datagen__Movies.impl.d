lib/datagen/movies.ml: Array Extract_util Gen List Names
