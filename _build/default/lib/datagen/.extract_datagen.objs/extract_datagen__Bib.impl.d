lib/datagen/bib.ml: Array Extract_util Gen List Names Printf
