lib/datagen/nested.mli: Extract_xml
