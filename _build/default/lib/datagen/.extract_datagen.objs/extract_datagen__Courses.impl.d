lib/datagen/courses.ml: Array Extract_util Gen List Names Printf
