lib/datagen/auction.mli: Extract_xml
