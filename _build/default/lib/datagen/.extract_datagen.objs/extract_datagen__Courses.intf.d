lib/datagen/courses.mli: Extract_xml
