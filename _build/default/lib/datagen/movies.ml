module Prng = Extract_util.Prng
module Zipf = Extract_util.Zipf

type config = {
  seed : int;
  movies : int;
  actors_per_movie : int;
  reviews_per_movie : int;
  genre_skew : float;
}

let default = { seed = 7; movies = 60; actors_per_movie = 4; reviews_per_movie = 2; genre_skew = 0.9 }

let review rng =
  let phrases =
    [|
      "a moving portrait of quiet lives";
      "overlong but beautifully shot";
      "a tense and satisfying thriller";
      "the ensemble cast shines";
      "uneven pacing undermines a strong premise";
      "a warm comedy with real heart";
    |]
  in
  Gen.el "review"
    [
      Gen.leaf "reviewer" (Names.full_name rng);
      Gen.leaf "rating" (string_of_int (Prng.int_in_range rng ~min:1 ~max:10));
      Gen.leaf "comment" (Prng.choose rng phrases);
    ]

let movie rng cfg ~movie_id zipf_genre zipf_studio =
  let title = Names.unique_label (Names.movie_title rng) movie_id in
  let cast =
    Gen.el "cast"
      (List.init cfg.actors_per_movie (fun _ -> Gen.leaf "actor" (Names.full_name rng)))
  in
  let reviews =
    Gen.el "reviews" (List.init cfg.reviews_per_movie (fun _ -> review rng))
  in
  Gen.el "movie"
    [
      Gen.leaf "title" title;
      Gen.leaf "year" (string_of_int (Prng.int_in_range rng ~min:1972 ~max:2007));
      Gen.leaf "genre" (Gen.pick_zipf rng zipf_genre Names.genres);
      Gen.leaf "studio" (Gen.pick_zipf rng zipf_studio Names.studios);
      Gen.leaf "director" (Names.full_name rng);
      Gen.leaf "country" (Prng.choose rng Names.countries);
      cast;
      reviews;
    ]

let generate cfg =
  let rng = Prng.create cfg.seed in
  let zipf_genre = Zipf.create ~n:(Array.length Names.genres) ~skew:cfg.genre_skew in
  let zipf_studio = Zipf.create ~n:(Array.length Names.studios) ~skew:cfg.genre_skew in
  let movies =
    List.init cfg.movies (fun i -> movie rng cfg ~movie_id:i zipf_genre zipf_studio)
  in
  Gen.document (Gen.el "movies" movies)

let sized ?(seed = 7) n = generate { default with seed; movies = max 1 n }
