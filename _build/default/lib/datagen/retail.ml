module Prng = Extract_util.Prng
module Zipf = Extract_util.Zipf

type config = {
  seed : int;
  retailers : int;
  stores_per_retailer : int;
  clothes_per_store : int;
  city_pool : int;
  category_pool : int;
  value_skew : float;
  with_dtd : bool;
}

let default =
  {
    seed = 42;
    retailers = 8;
    stores_per_retailer = 10;
    clothes_per_store = 12;
    city_pool = 6;
    category_pool = 8;
    value_skew = 1.0;
    with_dtd = true;
  }

let dtd_subset = Paper_example.(document ~with_dtd:true ()).Extract_xml.Types.dtd

let clothes rng zipf_cat zipf_small categories =
  let category = Gen.pick_zipf rng zipf_cat categories in
  let situation = Gen.pick_zipf rng zipf_small Names.situations |> fun s -> s in
  let fitting =
    (* 3-way choice reuses the binary Zipf by splitting the tail *)
    let i = Zipf.sample zipf_small rng in
    Names.fittings.(if i = 0 then 0 else 1 + Prng.int rng 2)
  in
  Gen.el "clothes"
    [
      Gen.leaf "category" category;
      Gen.leaf "situation" situation;
      Gen.leaf "fitting" fitting;
    ]

let store rng cfg ~store_id zipf_city zipf_cat zipf_small cities categories =
  let name = Names.unique_label (Prng.choose rng Names.store_names) store_id in
  let city = Gen.pick_zipf rng zipf_city cities in
  let state = Names.states.(Prng.int rng (Array.length Names.states)) in
  let merchandise =
    List.init cfg.clothes_per_store (fun _ -> clothes rng zipf_cat zipf_small categories)
  in
  Gen.el "store"
    [
      Gen.leaf "name" name;
      Gen.leaf "state" state;
      Gen.leaf "city" city;
      Gen.el "merchandises" merchandise;
    ]

let retailer rng cfg ~retailer_id zipfs =
  let zipf_city, zipf_cat, zipf_small = zipfs in
  let cities =
    Array.of_list (Prng.sample rng Names.cities cfg.city_pool)
  in
  let categories =
    Array.of_list (Prng.sample rng Names.clothes_categories cfg.category_pool)
  in
  let name =
    Names.unique_label
      Names.retailer_names.(retailer_id mod Array.length Names.retailer_names)
      retailer_id
  in
  let stores =
    List.init cfg.stores_per_retailer (fun i ->
        store rng cfg
          ~store_id:((retailer_id * cfg.stores_per_retailer) + i)
          zipf_city zipf_cat zipf_small cities categories)
  in
  Gen.el "retailer" (Gen.leaf "name" name :: Gen.leaf "product" "apparel" :: stores)

let generate cfg =
  let rng = Prng.create cfg.seed in
  let zipf_city = Zipf.create ~n:cfg.city_pool ~skew:cfg.value_skew in
  let zipf_cat = Zipf.create ~n:cfg.category_pool ~skew:cfg.value_skew in
  let zipf_small = Zipf.create ~n:2 ~skew:cfg.value_skew in
  let retailers =
    List.init cfg.retailers (fun i ->
        retailer rng cfg ~retailer_id:i (zipf_city, zipf_cat, zipf_small))
  in
  let root = Gen.el "retailers" retailers in
  Gen.document ?dtd:(if cfg.with_dtd then dtd_subset else None) root

let scaled ?(seed = 42) n =
  let clothes_total = max 1 n in
  let per_store = default.clothes_per_store in
  let stores_total = max 1 (clothes_total / per_store) in
  let retailers = max 1 (stores_total / default.stores_per_retailer) in
  let stores_per_retailer = max 1 (stores_total / retailers) in
  generate { default with seed; retailers; stores_per_retailer }

let approx_nodes cfg =
  (* clothes ≈ 7 nodes, store overhead ≈ 8, retailer overhead ≈ 5 *)
  let clothes = cfg.retailers * cfg.stores_per_retailer * cfg.clothes_per_store in
  let stores = cfg.retailers * cfg.stores_per_retailer in
  (clothes * 7) + (stores * 8) + (cfg.retailers * 5) + 1
