module Prng = Extract_util.Prng
module Zipf = Extract_util.Zipf

type config = {
  seed : int;
  publications : int;
  max_authors : int;
  venue_skew : float;
}

let default = { seed = 23; publications = 80; max_authors = 5; venue_skew = 1.1 }

let title rng ~pub_id =
  let w = Extract_util.Prng.choose rng Names.paper_topic_words in
  let w2 = Extract_util.Prng.choose rng Names.paper_topic_words in
  Names.unique_label (Printf.sprintf "Efficient %s %s" w w2) pub_id

let publication rng cfg ~pub_id zipf_venue zipf_year =
  let tag = if Prng.bool rng then "article" else "inproceedings" in
  let authors =
    List.init
      (Prng.int_in_range rng ~min:1 ~max:cfg.max_authors)
      (fun _ -> Gen.leaf "author" (Names.full_name rng))
  in
  let years = Array.init 12 (fun i -> string_of_int (1996 + i)) in
  Gen.el tag
    ([
       Gen.leaf "title" (title rng ~pub_id);
       Gen.leaf "venue" (Gen.pick_zipf rng zipf_venue Names.journals);
       Gen.leaf "year" (Gen.pick_zipf rng zipf_year years);
     ]
    @ authors
    @ [ Gen.leaf "pages" (string_of_int (Prng.int_in_range rng ~min:1 ~max:800)) ])

let generate cfg =
  let rng = Prng.create cfg.seed in
  let zipf_venue = Zipf.create ~n:(Array.length Names.journals) ~skew:cfg.venue_skew in
  let zipf_year = Zipf.create ~n:12 ~skew:cfg.venue_skew in
  let pubs =
    List.init cfg.publications (fun i -> publication rng cfg ~pub_id:i zipf_venue zipf_year)
  in
  Gen.document (Gen.el "bib" pubs)

let sized ?(seed = 23) n = generate { default with seed; publications = max 1 n }
