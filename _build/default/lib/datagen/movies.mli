(** Movie dataset — the demo's "movies" scenario.

    Shape: [movies/movie] with [title], [year], [genre], [studio],
    [director], [cast/actor]* and [reviews/review]* underneath each movie.
    Generated {e without} a DTD so the
    star-node inference from data is the path exercised. Movie titles are
    unique (the mined key); genres and studios are Zipf-skewed so per-result
    dominant features exist. *)

type config = {
  seed : int;
  movies : int;
  actors_per_movie : int;
  reviews_per_movie : int;
  genre_skew : float;
}

val default : config
(** seed 7, 60 movies, 4 actors, 2 reviews, skew 0.9. *)

val generate : config -> Extract_xml.Types.document

val sized : ?seed:int -> int -> Extract_xml.Types.document
(** [sized n] generates [n] movies with the default shape. *)
