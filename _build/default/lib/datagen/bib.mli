(** Bibliography dataset, DBLP-flavoured.

    Shape: [bib/(article | inproceedings)*] with author lists of varying
    length, venues and years — many entities directly under the root, no
    DTD, heterogeneous siblings (two entity tags under one parent). Titles
    are unique keys; venues/years are skewed. *)

type config = {
  seed : int;
  publications : int;
  max_authors : int;
  venue_skew : float;
}

val default : config
(** seed 23, 80 publications, up to 5 authors, skew 1.1. *)

val generate : config -> Extract_xml.Types.document

val sized : ?seed:int -> int -> Extract_xml.Types.document
