(** Scalable retailer dataset — the paper's "stores" demo scenario.

    Same schema as {!Paper_example} ([retailers/retailer/store/merchandises/
    clothes]) but fully parameterized, with Zipf-skewed feature values so
    dominant features exist at every scale. Used by the benchmark sweeps
    (result size, size bound, feature count, index build). *)

type config = {
  seed : int;
  retailers : int;
  stores_per_retailer : int;
  clothes_per_store : int;
  city_pool : int;        (** distinct cities drawn per retailer *)
  category_pool : int;    (** distinct clothes categories *)
  value_skew : float;     (** Zipf skew of feature values; 0 = uniform *)
  with_dtd : bool;
}

val default : config
(** seed 42, 8 retailers × 10 stores × 12 clothes, pools 6/8, skew 1.0,
    with DTD. *)

val generate : config -> Extract_xml.Types.document

val scaled : ?seed:int -> int -> Extract_xml.Types.document
(** [scaled n] targets roughly [n] clothes entities total, keeping the
    default shape otherwise. *)

val approx_nodes : config -> int
(** Rough node-count estimate for a configuration (for sweep planning). *)
