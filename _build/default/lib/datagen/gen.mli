(** Shared machinery for the dataset generators. *)

module Xml = Extract_xml.Types

val el : string -> Xml.t list -> Xml.t

val leaf : string -> string -> Xml.t

val expand_counts : (string * int) list -> string array
(** [expand_counts [("a", 2); ("b", 1)]] is [[|"a"; "a"; "b"|]] — a value
    multiset written out, in spec order. *)

val deal : 'a array -> int -> 'a array array
(** [deal items k] splits the items into [k] groups round-robin (group
    sizes differ by at most one). @raise Invalid_argument when [k <= 0]. *)

val pick_zipf : Extract_util.Prng.t -> Extract_util.Zipf.t -> 'a array -> 'a
(** Sample an element with Zipf-distributed rank.
    @raise Invalid_argument when the array size differs from the
    distribution size. *)

val document : ?dtd:string -> Xml.t -> Xml.document
(** Wrap a root element into a document. @raise Invalid_argument on a text
    root. *)
