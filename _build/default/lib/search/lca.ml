module Document = Extract_store.Document

let subtree_match_counts doc matches =
  let n = Document.node_count doc in
  let counts = Array.make n 0 in
  (* Mark matches, then accumulate children into parents in reverse
     pre-order (children always have larger ids than their parent). *)
  Array.iter (fun m -> counts.(m) <- counts.(m) + 1) matches;
  for node = n - 1 downto 1 do
    match Document.parent doc node with
    | Some p -> counts.(p) <- counts.(p) + counts.(node)
    | None -> ()
  done;
  counts

let covering_nodes doc lists =
  match lists with
  | [] -> []
  | _ when List.exists (fun l -> Array.length l = 0) lists -> []
  | _ ->
    let count_arrays = List.map (subtree_match_counts doc) lists in
    let n = Document.node_count doc in
    let out = ref [] in
    for node = n - 1 downto 0 do
      if Document.is_element doc node
         && List.for_all (fun counts -> counts.(node) > 0) count_arrays
      then out := node :: !out
    done;
    !out

let slca_reference doc lists =
  match covering_nodes doc lists with
  | [] -> []
  | covering ->
    (* A covering node is an SLCA iff no proper descendant covers. Since
       [covering] is closed under ancestors-of-covering-nodes within the
       covering set... it is not, so test each against all. The covering
       list is in document order; a node's descendants follow it and lie in
       its interval. *)
    let arr = Array.of_list covering in
    let n = Array.length arr in
    let keep = ref [] in
    for i = n - 1 downto 0 do
      let u = arr.(i) in
      let has_desc =
        i + 1 < n && arr.(i + 1) <= Document.subtree_last doc u
        (* document order: the immediate next covering node is inside u's
           interval iff u has a covering proper descendant *)
      in
      if not has_desc then keep := u :: !keep
    done;
    !keep
