module Tokenizer = Extract_store.Tokenizer

type t = { keywords : string list }

let dedup keywords =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun k ->
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    keywords

let of_keywords raw =
  let keywords =
    raw
    |> List.concat_map Tokenizer.tokens
    |> List.filter (fun k -> k <> "")
    |> dedup
  in
  { keywords }

let of_string s = of_keywords [ s ]

let keywords t = t.keywords

let size t = List.length t.keywords

let is_empty t = t.keywords = []

let mem t k = List.mem (Tokenizer.normalize k) t.keywords

let to_string t = String.concat " " t.keywords

let pp ppf t = Format.pp_print_string ppf (to_string t)
