(** Keyword queries.

    A query is an ordered list of normalized keywords. Order matters for
    snippet generation (the IList starts with the keywords in query order)
    but not for matching. *)

type t

val of_string : string -> t
(** Split on whitespace and punctuation, lowercase, drop empty tokens and
    duplicates (keeping first occurrences). *)

val of_keywords : string list -> t
(** Normalize a pre-split list the same way. *)

val keywords : t -> string list

val size : t -> int

val is_empty : t -> bool

val mem : t -> string -> bool
(** Membership after normalization. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
