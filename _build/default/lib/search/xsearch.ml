module Document = Extract_store.Document
module Inverted_index = Extract_store.Inverted_index

(* Nodes strictly between [n] (exclusive) and its ancestor [stop]
   (exclusive), i.e. the interior of the upward path. *)
let interior_path doc ~from ~stop =
  let rec up acc n =
    match Document.parent doc n with
    | Some p when p <> stop -> up (p :: acc) p
    | Some _ | None -> acc
  in
  up [] from

let interconnected doc a b =
  if a = b then true
  else begin
    let l = Document.lca doc a b in
    let interior =
      (if a = l then [] else interior_path doc ~from:a ~stop:l)
      @ (if b = l then [] else interior_path doc ~from:b ~stop:l)
      @ (if l = a || l = b then [] else [ l ])
    in
    (* two distinct interior nodes with the same tag break the relation;
       the endpoints may share a tag with each other but not with an
       interior node of the other branch — the published relation only
       excludes the pair (a, b) itself, so endpoint tags are also checked
       against the interior *)
    let tags = List.map (Document.tag_id doc) interior in
    let seen = Hashtbl.create 8 in
    let distinct_dup =
      List.exists
        (fun t ->
          if Hashtbl.mem seen t then true
          else begin
            Hashtbl.add seen t ();
            false
          end)
        tags
    in
    let endpoint_clash =
      List.exists
        (fun t ->
          (Document.is_element doc a && Document.tag_id doc a = t)
          || (Document.is_element doc b && Document.tag_id doc b = t))
        tags
    in
    not (distinct_dup || endpoint_clash)
  end

(* Witness match per keyword under [root]: the shallowest match (closest
   to the root), ties broken by document order. *)
let witness doc root matches =
  List.filter (fun m -> Document.is_ancestor_or_self doc ~anc:root ~desc:m) matches
  |> List.fold_left
       (fun best m ->
         match best with
         | None -> Some m
         | Some b ->
           if Document.depth doc m < Document.depth doc b then Some m else best)
       None

let compute index query =
  let doc = Inverted_index.document index in
  let keywords = Query.keywords query in
  let lists = List.map (Inverted_index.lookup index) keywords in
  let match_lists = List.map Array.to_list lists in
  Slca.compute doc lists
  |> List.filter_map (fun root ->
         let witnesses = List.filter_map (witness doc root) match_lists in
         if List.length witnesses <> List.length keywords then None
         else begin
           let rec pairwise = function
             | [] -> true
             | w :: rest ->
               List.for_all (fun w' -> interconnected doc w w') rest && pairwise rest
           in
           if pairwise witnesses then
             Some (Result_tree.match_paths doc ~root ~matches:witnesses)
           else None
         end)
