lib/search/xsearch.ml: Array Extract_store Hashtbl List Query Result_tree Slca
