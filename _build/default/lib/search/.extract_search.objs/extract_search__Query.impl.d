lib/search/query.ml: Extract_store Format Hashtbl List String
