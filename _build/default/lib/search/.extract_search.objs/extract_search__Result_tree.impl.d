lib/search/result_tree.ml: Array Buffer Extract_store Extract_util Extract_xml Hashtbl List Printf String
