lib/search/elca.mli: Extract_store
