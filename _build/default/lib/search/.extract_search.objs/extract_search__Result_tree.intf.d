lib/search/result_tree.mli: Extract_store Extract_util Extract_xml
