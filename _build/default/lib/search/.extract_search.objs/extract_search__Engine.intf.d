lib/search/engine.mli: Extract_store Query Result_tree
