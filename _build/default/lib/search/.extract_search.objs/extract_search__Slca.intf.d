lib/search/slca.mli: Extract_store
