lib/search/query.mli: Format
