lib/search/lca.ml: Array Extract_store List
