lib/search/slca.ml: Array Extract_store List
