lib/search/elca.ml: Array Extract_store Lca List
