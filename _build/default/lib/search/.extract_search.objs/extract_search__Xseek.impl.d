lib/search/xseek.ml: Extract_store List Query Result_tree Slca
