lib/search/ranker.ml: Array Extract_store List Query Result_tree
