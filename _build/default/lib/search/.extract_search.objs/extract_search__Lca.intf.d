lib/search/lca.mli: Extract_store
