lib/search/xseek.mli: Extract_store Query Result_tree
