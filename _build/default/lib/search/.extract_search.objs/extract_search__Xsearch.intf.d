lib/search/xsearch.mli: Extract_store Query Result_tree
