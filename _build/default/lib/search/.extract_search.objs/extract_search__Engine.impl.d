lib/search/engine.ml: Array Elca Extract_store List Query Result_tree Slca Xsearch Xseek
