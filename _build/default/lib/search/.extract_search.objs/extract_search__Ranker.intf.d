lib/search/ranker.mli: Extract_store Query Result_tree
