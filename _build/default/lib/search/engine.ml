module Inverted_index = Extract_store.Inverted_index

type semantics = Slca | Elca | Xseek | Xsearch

type shape = Full_subtree | Match_paths

let roots_of index query = function
  | Xseek | Xsearch -> None (* these produce results directly *)
  | (Slca | Elca) as s ->
    let doc = Inverted_index.document index in
    let lists = List.map (Inverted_index.lookup index) (Query.keywords query) in
    let roots =
      match s with
      | Slca -> Slca.compute doc lists
      | Elca -> Elca.compute doc lists
      | Xseek | Xsearch -> assert false
    in
    Some roots

let shape_result index query shape doc root =
  match shape with
  | Full_subtree -> Result_tree.full doc root
  | Match_paths ->
    let matches =
      Query.keywords query
      |> List.concat_map (fun k ->
             Inverted_index.lookup index k
             |> Array.to_list
             |> List.filter (fun m ->
                    Extract_store.Document.is_ancestor_or_self doc ~anc:root ~desc:m))
    in
    Result_tree.match_paths doc ~root ~matches

let run ?(semantics = Xseek) ?(shape = Full_subtree) ?limit index kinds query =
  let doc = Inverted_index.document index in
  let results =
    if Query.is_empty query then []
    else
      match semantics with
      | Xseek -> begin
        let full_results = Xseek.compute index kinds query in
        match shape with
        | Full_subtree -> full_results
        | Match_paths ->
          List.map
            (fun r -> shape_result index query Match_paths doc (Result_tree.root r))
            full_results
      end
      | Xsearch -> begin
        (* XSearch answers are inherently match-path trees; the full shape
           expands each answer root to its subtree. *)
        let path_results = Xsearch.compute index query in
        match shape with
        | Match_paths -> path_results
        | Full_subtree ->
          List.map (fun r -> Result_tree.full doc (Result_tree.root r)) path_results
      end
      | Slca | Elca ->
        (match roots_of index query semantics with
        | None -> []
        | Some roots -> List.map (shape_result index query shape doc) roots)
  in
  match limit with
  | None -> results
  | Some k -> List.filteri (fun i _ -> i < k) results

let semantics_of_string = function
  | "slca" -> Some Slca
  | "elca" -> Some Elca
  | "xseek" -> Some Xseek
  | "xsearch" -> Some Xsearch
  | _ -> None

let string_of_semantics = function
  | Slca -> "slca"
  | Elca -> "elca"
  | Xseek -> "xseek"
  | Xsearch -> "xsearch"

let all_semantics = [ Slca; Elca; Xseek; Xsearch ]

(* Conjunctive semantics returns nothing when any keyword is missing; the
   demo UI wants "did you mean fewer words". Drop the rarest keyword (the
   most likely typo or over-specification) until something matches. *)
let run_relaxed ?semantics ?shape ?limit index kinds query =
  let rec attempt query dropped =
    match run ?semantics ?shape ?limit index kinds query with
    | [] when Query.size query > 1 ->
      let keywords = Query.keywords query in
      let rarest =
        List.fold_left
          (fun best k ->
            let df = Array.length (Inverted_index.lookup index k) in
            match best with
            | Some (_, best_df) when best_df <= df -> best
            | _ -> Some (k, df))
          None keywords
      in
      (match rarest with
      | Some (k, _) ->
        let rest = List.filter (fun k2 -> k2 <> k) keywords in
        attempt (Query.of_keywords rest) (k :: dropped)
      | None -> [], List.rev dropped)
    | results -> results, List.rev dropped
  in
  attempt query []
