(** Result ranking, XRank-flavoured (Guo et al., SIGMOD 2003 — the paper's
    reference [2]).

    The demo positions snippets as a {e complement} to ranking (§1:
    "various ranking schemes have been proposed … no ranking scheme can
    always perfectly assess relevance"); a full engine needs both. This
    ranker scores a query result by combining:

    - {b keyword specificity} — IDF over element match counts, so rare
      keywords dominate the score;
    - {b match decay} — a match counts through a per-level decay factor
      (XRank's ElemRank propagation): matches near the result root beat
      matches buried deep below it;
    - {b term frequency} — logarithmic in the number of matches inside the
      result;
    - {b result specificity} — smaller results outrank sprawling ones,
      echoing the SLCA intuition.

    Scores are comparable only within one query. *)

type t

val make : ?decay:float -> Extract_store.Inverted_index.t -> t
(** [decay] is the per-level attenuation in (0, 1], default 0.8. *)

val idf : t -> string -> float
(** [ln (1 + elements / (1 + df))], where [df] is the keyword's posting
    count. Unknown keywords get the maximum IDF. *)

val score : t -> Query.t -> Result_tree.t -> float

val rank : t -> Query.t -> Result_tree.t list -> (Result_tree.t * float) list
(** Sorted by decreasing score; ties keep the input (document) order. *)
