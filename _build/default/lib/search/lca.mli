(** Reference LCA-based semantics, computed by exhaustive subtree counting.

    [covering_nodes] is the O(n·k) "count matches per subtree" method. It is
    the correctness oracle the optimized {!Slca} merge is property-tested
    against, and the substrate for {!Elca}. *)

module Document = Extract_store.Document

val covering_nodes : Document.t -> Document.node array list -> Document.node list
(** Elements whose subtree contains at least one match from {e every}
    list, in document order. Empty when any list is empty. *)

val slca_reference : Document.t -> Document.node array list -> Document.node list
(** Smallest LCAs: covering nodes none of whose proper descendants is also
    covering. Document order. *)

val subtree_match_counts : Document.t -> Document.node array -> int array
(** [counts.(n)] = number of matches from the list inside the subtree of
    [n] (matches are element ids; a match counts for itself and every
    ancestor). *)
