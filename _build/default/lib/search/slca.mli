(** Smallest Lowest Common Ancestor keyword semantics
    (Xu & Papakonstantinou, SIGMOD 2005 — reference [7] of the paper).

    The SLCAs of match lists [S1..Sk] are the nodes whose subtree contains
    at least one match from every list and none of whose proper descendants
    does. [compute] is the indexed-lookup merge over sorted posting lists,
    driven by the smallest list; it is property-tested against the
    exhaustive {!Lca.slca_reference}. *)

module Document = Extract_store.Document

val compute : Document.t -> Document.node array list -> Document.node list
(** SLCAs in document order. Empty when any list is empty (conjunctive
    semantics) or no list is given. *)

val closest_in : Document.node array -> lo:int -> hi:int -> Document.node option
(** Exposed for testing: some element of the sorted array within
    [[lo, hi]], or [None]. *)
