module Document = Extract_store.Document

let compute doc lists =
  match lists with
  | [] -> []
  | _ when List.exists (fun l -> Array.length l = 0) lists -> []
  | _ ->
    let k = List.length lists in
    let totals = List.map (Lca.subtree_match_counts doc) lists |> Array.of_list in
    let n = Document.node_count doc in
    let covering node = Array.for_all (fun counts -> counts.(node) > 0) totals in
    (* own.(i).(node) = 1 when node itself matches keyword i *)
    let own = Array.make_matrix k n 0 in
    List.iteri (fun i arr -> Array.iter (fun m -> own.(i).(m) <- 1) arr) lists;
    (* exclusive.(i).(node) = matches of keyword i in node's subtree outside
       covering children subtrees. Children have larger ids, so a reverse
       pre-order pass accumulates children before their parent reads them. *)
    let exclusive = Array.init k (fun i -> Array.copy own.(i)) in
    for node = n - 1 downto 1 do
      match Document.parent doc node with
      | Some p when Document.is_element doc node ->
        if not (covering node) then
          for i = 0 to k - 1 do
            exclusive.(i).(p) <- exclusive.(i).(p) + exclusive.(i).(node)
          done
      | _ -> ()
    done;
    let out = ref [] in
    for node = n - 1 downto 0 do
      if Document.is_element doc node
         && (let rec all i = i >= k || (exclusive.(i).(node) > 0 && all (i + 1)) in
             all 0)
      then out := node :: !out
    done;
    !out
