(** Exclusive Lowest Common Ancestor semantics, in the style of XRank
    (Guo et al., SIGMOD 2003 — reference [2] of the paper).

    A node [u] is an ELCA when its subtree still contains a match of every
    keyword after discarding the matches located inside children subtrees
    that themselves contain all keywords. Every SLCA is an ELCA; ELCAs may
    additionally include ancestors with independent witnesses. *)

module Document = Extract_store.Document

val compute : Document.t -> Document.node array list -> Document.node list
(** ELCAs in document order. Empty when any list is empty. O(n·k). *)
