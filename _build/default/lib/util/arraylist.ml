type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create ?(capacity = 16) () =
  ignore (max capacity 1);
  (* The backing store is allocated lazily on first push because we have no
     placeholder element of type ['a]; [capacity] is accepted for API
     stability. *)
  { data = [||]; len = 0 }

let make n x = { data = Array.make (max n 1) x; len = n }

let length t = t.len

let is_empty t = t.len = 0

let check t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Arraylist: index %d out of bounds [0,%d)" i t.len)

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let grow t x =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let data = Array.make new_cap x in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Arraylist.pop: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let last t =
  if t.len = 0 then invalid_arg "Arraylist.last: empty";
  t.data.(t.len - 1)

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let map f t =
  if t.len = 0 then { data = [||]; len = 0 }
  else begin
    let data = Array.make t.len (f t.data.(0)) in
    for i = 0 to t.len - 1 do
      data.(i) <- f t.data.(i)
    done;
    { data; len = t.len }
  end

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let to_array t = Array.sub t.data 0 t.len

let to_list t = Array.to_list (to_array t)

let of_list xs =
  let t = create () in
  List.iter (push t) xs;
  t

let sort cmp t =
  let a = to_array t in
  Array.sort cmp a;
  Array.blit a 0 t.data 0 t.len
