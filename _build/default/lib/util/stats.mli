(** Descriptive statistics over float samples, for the benchmark harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : float array -> summary
(** @raise Invalid_argument on an empty sample. *)

val mean : float array -> float

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 for samples of size 1. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100], nearest-rank on the sorted
    sample. *)

val pp_summary : Format.formatter -> summary -> unit
