(** Deterministic pseudo-random number generation (splitmix64).

    The synthetic dataset generators and workload generators must be
    reproducible across runs and platforms, so they use this self-contained
    PRNG rather than [Stdlib.Random]. Streams can be [split] so independent
    generator components do not perturb each other's sequences. *)

type t

val create : int -> t
(** [create seed] is a fresh stream seeded with [seed]. *)

val split : t -> t
(** [split t] derives an independent stream; [t] advances by one step. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if
    [bound <= 0]. *)

val int_in_range : t -> min:int -> max:int -> int
(** [int_in_range t ~min ~max] is uniform in [min, max] inclusive.
    @raise Invalid_argument if [max < min]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. @raise Invalid_argument on an
    empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> 'a array -> int -> 'a list
(** [sample t arr k] is [k] elements drawn without replacement (all of
    [arr], in random order, if [k >= Array.length arr]). *)
