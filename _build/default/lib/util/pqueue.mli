(** Minimum priority queue (binary heap) with integer priorities.

    Used by the greedy instance selector to repeatedly extract the candidate
    instance with the smallest marginal edge cost. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> prio:int -> 'a -> unit
(** [add t ~prio x] inserts [x] with priority [prio]. *)

val min : 'a t -> (int * 'a) option
(** [min t] is the minimum-priority binding without removing it. *)

val pop : 'a t -> (int * 'a) option
(** [pop t] removes and returns the minimum-priority binding. Ties are
    broken by insertion order (earlier insertions first), making traversals
    deterministic. *)

val clear : 'a t -> unit
