(** String interning: a bijection between strings and dense integer ids.

    Tag names, attribute names and index tokens are interned so the document
    arena and the inverted index can store and compare plain integers. Ids
    are allocated consecutively from 0 in first-seen order, which makes them
    usable as array indexes. *)

type t

val create : ?capacity:int -> unit -> t

val intern : t -> string -> int
(** [intern t s] is the id of [s], allocating a fresh id if [s] was never
    seen. *)

val find : t -> string -> int option
(** [find t s] is the id of [s] if already interned. *)

val name : t -> int -> string
(** [name t id] is the string with id [id].
    @raise Invalid_argument if [id] was never allocated. *)

val count : t -> int
(** Number of distinct interned strings; valid ids are [0 .. count - 1]. *)

val iter : (int -> string -> unit) -> t -> unit
(** [iter f t] applies [f id s] in id order. *)
