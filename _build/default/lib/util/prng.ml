(* splitmix64: tiny, fast, and statistically solid for data generation.
   Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = mix seed }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem r (Int64.of_int bound))

let int_in_range t ~min ~max =
  if max < min then invalid_arg "Prng.int_in_range: max < min";
  min + int t (max - min + 1)

let float t bound =
  let r = Int64.shift_right_logical (next_int64 t) 11 in
  (* 53 random bits, the mantissa width of a double *)
  Int64.to_float r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let x = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- x
  done

let sample t arr k =
  let copy = Array.copy arr in
  shuffle t copy;
  let k = Stdlib.min k (Array.length copy) in
  Array.to_list (Array.sub copy 0 k)
