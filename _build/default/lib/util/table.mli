(** Plain-text table rendering for the benchmark harness and the CLI.

    Columns are sized to their widest cell; numeric-looking cells are
    right-aligned, everything else left-aligned. *)

type t

val create : string list -> t
(** [create headers] is an empty table with the given column headers. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header
    width. *)

val row_count : t -> int

val render : t -> string
(** Multi-line string, no trailing newline. *)

val print : ?title:string -> t -> unit
(** [print t] writes the table to stdout, preceded by [title] underlined
    when given, followed by a blank line. *)
