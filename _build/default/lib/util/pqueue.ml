(* Binary min-heap over (priority, sequence number, value). The sequence
   number makes pops deterministic under priority ties. *)

type 'a entry = { prio : int; seq : int; value : 'a }

type 'a t = {
  heap : 'a entry Arraylist.t;
  mutable next_seq : int;
}

let create () = { heap = Arraylist.create (); next_seq = 0 }

let length t = Arraylist.length t.heap

let is_empty t = length t = 0

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let swap t i j =
  let x = Arraylist.get t.heap i and y = Arraylist.get t.heap j in
  Arraylist.set t.heap i y;
  Arraylist.set t.heap j x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (Arraylist.get t.heap i) (Arraylist.get t.heap parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let n = length t in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && less (Arraylist.get t.heap l) (Arraylist.get t.heap !smallest) then
    smallest := l;
  if r < n && less (Arraylist.get t.heap r) (Arraylist.get t.heap !smallest) then
    smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let add t ~prio value =
  let entry = { prio; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  Arraylist.push t.heap entry;
  sift_up t (length t - 1)

let min t =
  if is_empty t then None
  else
    let e = Arraylist.get t.heap 0 in
    Some (e.prio, e.value)

let pop t =
  if is_empty t then None
  else begin
    let top = Arraylist.get t.heap 0 in
    let last = Arraylist.pop t.heap in
    if not (is_empty t) then begin
      Arraylist.set t.heap 0 last;
      sift_down t 0
    end;
    Some (top.prio, top.value)
  end

let clear t =
  Arraylist.clear t.heap;
  t.next_seq <- 0
