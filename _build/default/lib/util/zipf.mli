(** Zipf-distributed sampling over ranks [0 .. n-1].

    Feature-value skew in the synthetic datasets is Zipfian so that dominant
    features (the paper's §2.3) genuinely exist: with skew [s > 0], rank 0
    is sampled proportionally to [1], rank [k] proportionally to
    [1 / (k+1)^s]. Skew [0] degenerates to the uniform distribution. *)

type t

val create : n:int -> skew:float -> t
(** Precomputes the cumulative distribution.
    @raise Invalid_argument if [n <= 0] or [skew < 0]. *)

val size : t -> int

val skew : t -> float

val sample : t -> Prng.t -> int
(** [sample t rng] is a rank in [0, n). *)

val probability : t -> int -> float
(** [probability t k] is the probability mass of rank [k]. *)
