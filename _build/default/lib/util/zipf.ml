type t = {
  n : int;
  skew : float;
  cdf : float array; (* cdf.(k) = P(rank <= k), cdf.(n-1) = 1.0 *)
}

let create ~n ~skew =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if skew < 0.0 then invalid_arg "Zipf.create: skew must be non-negative";
  let weights = Array.init n (fun k -> 1.0 /. (float_of_int (k + 1) ** skew)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. (weights.(k) /. total);
    cdf.(k) <- !acc
  done;
  cdf.(n - 1) <- 1.0;
  { n; skew; cdf }

let size t = t.n

let skew t = t.skew

let sample t rng =
  let u = Prng.float rng 1.0 in
  (* Binary search for the first k with cdf.(k) >= u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let probability t k =
  if k < 0 || k >= t.n then invalid_arg "Zipf.probability: rank out of range";
  if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)
