(** ASCII tree rendering, used for snippets and result trees on the CLI. *)

type tree = Node of string * tree list
(** A labelled rose tree. *)

val render : tree -> string
(** Unicode box-drawing rendition, one node per line, no trailing
    newline. Example:

    {v
    retailer
    ├── name "Brook Brothers"
    └── store
        └── city "Houston"
    v} *)

val render_ascii : tree -> string
(** Pure-ASCII variant ([|--], [`--]) for environments without UTF-8. *)

val size : tree -> int
(** Number of nodes. *)

val edges : tree -> int
(** Number of edges, i.e. [size t - 1]. *)

val depth : tree -> int
(** Length of the longest root-to-leaf path in edges; 0 for a leaf. *)
