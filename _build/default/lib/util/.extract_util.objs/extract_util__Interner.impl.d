lib/util/interner.ml: Arraylist Hashtbl Printf
