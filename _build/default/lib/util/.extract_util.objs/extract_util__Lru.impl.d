lib/util/lru.ml: Hashtbl
