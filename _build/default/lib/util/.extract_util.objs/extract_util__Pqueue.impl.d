lib/util/pqueue.ml: Arraylist
