lib/util/table.mli:
