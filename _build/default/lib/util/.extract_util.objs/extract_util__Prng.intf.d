lib/util/prng.mli:
