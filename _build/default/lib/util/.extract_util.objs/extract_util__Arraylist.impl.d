lib/util/arraylist.ml: Array List Printf
