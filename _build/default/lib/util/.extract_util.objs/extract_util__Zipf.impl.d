lib/util/zipf.ml: Array Prng
