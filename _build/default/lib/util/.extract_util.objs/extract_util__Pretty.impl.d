lib/util/pretty.ml: Buffer List String
