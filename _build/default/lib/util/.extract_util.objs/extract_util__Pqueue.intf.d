lib/util/pqueue.mli:
