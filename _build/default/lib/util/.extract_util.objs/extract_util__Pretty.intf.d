lib/util/pretty.mli:
