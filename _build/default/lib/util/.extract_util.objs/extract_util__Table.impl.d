lib/util/table.ml: Array Arraylist Buffer List Printf String
