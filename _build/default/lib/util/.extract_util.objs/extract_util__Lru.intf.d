lib/util/lru.mli:
