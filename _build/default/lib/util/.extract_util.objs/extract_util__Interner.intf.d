lib/util/interner.mli:
