lib/util/arraylist.mli:
