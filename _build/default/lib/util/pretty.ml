type tree = Node of string * tree list

let render_with ~tee ~corner ~pipe ~blank t =
  let buf = Buffer.create 128 in
  let rec walk prefix is_last (Node (label, children)) ~top =
    if not top then begin
      Buffer.add_string buf prefix;
      Buffer.add_string buf (if is_last then corner else tee)
    end;
    Buffer.add_string buf label;
    Buffer.add_char buf '\n';
    let child_prefix =
      if top then prefix else prefix ^ (if is_last then blank else pipe)
    in
    let rec each = function
      | [] -> ()
      | [ c ] -> walk child_prefix true c ~top:false
      | c :: rest ->
        walk child_prefix false c ~top:false;
        each rest
    in
    each children
  in
  walk "" true t ~top:true;
  let s = Buffer.contents buf in
  if s <> "" && s.[String.length s - 1] = '\n' then String.sub s 0 (String.length s - 1)
  else s

let render t =
  render_with ~tee:"\xe2\x94\x9c\xe2\x94\x80\xe2\x94\x80 "
    ~corner:"\xe2\x94\x94\xe2\x94\x80\xe2\x94\x80 "
    ~pipe:"\xe2\x94\x82   " ~blank:"    " t

let render_ascii t = render_with ~tee:"|-- " ~corner:"`-- " ~pipe:"|   " ~blank:"    " t

let rec size (Node (_, children)) = 1 + List.fold_left (fun acc c -> acc + size c) 0 children

let edges t = size t - 1

let rec depth (Node (_, children)) =
  match children with
  | [] -> 0
  | _ -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children
