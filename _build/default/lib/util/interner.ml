type t = {
  ids : (string, int) Hashtbl.t;
  names : string Arraylist.t;
}

let create ?(capacity = 64) () =
  { ids = Hashtbl.create capacity; names = Arraylist.create ~capacity () }

let intern t s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> id
  | None ->
    let id = Arraylist.length t.names in
    Hashtbl.add t.ids s id;
    Arraylist.push t.names s;
    id

let find t s = Hashtbl.find_opt t.ids s

let name t id =
  if id < 0 || id >= Arraylist.length t.names then
    invalid_arg (Printf.sprintf "Interner.name: unknown id %d" id);
  Arraylist.get t.names id

let count t = Arraylist.length t.names

let iter f t = Arraylist.iteri f t.names
