type t = {
  headers : string list;
  width : int;
  rows : string list Arraylist.t;
}

let create headers =
  if headers = [] then invalid_arg "Table.create: no columns";
  { headers; width = List.length headers; rows = Arraylist.create () }

let add_row t row =
  if List.length row <> t.width then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d" t.width
         (List.length row));
  Arraylist.push t.rows row

let row_count t = Arraylist.length t.rows

let is_numeric s =
  s <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+'
                 || c = 'e' || c = 'E' || c = '%' || c = 'x')
       s
  && String.exists (fun c -> c >= '0' && c <= '9') s

let render t =
  let widths = Array.make t.width 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure t.headers;
  Arraylist.iter measure t.rows;
  let buf = Buffer.create 256 in
  let pad i cell ~right =
    let w = widths.(i) in
    let fill = String.make (w - String.length cell) ' ' in
    if right then fill ^ cell else cell ^ fill
  in
  let emit_row ?(align_numeric = true) row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i cell ~right:(align_numeric && is_numeric cell)))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row ~align_numeric:false t.headers;
  List.iteri
    (fun i _ ->
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make widths.(i) '-'))
    t.headers;
  Buffer.add_char buf '\n';
  Arraylist.iter emit_row t.rows;
  (* drop the trailing newline *)
  let s = Buffer.contents buf in
  if s <> "" && s.[String.length s - 1] = '\n' then String.sub s 0 (String.length s - 1)
  else s

let print ?title t =
  (match title with
  | Some title ->
    print_endline title;
    print_endline (String.make (String.length title) '=')
  | None -> ());
  print_endline (render t);
  print_newline ()
