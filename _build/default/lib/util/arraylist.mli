(** Growable arrays (amortized O(1) append), the workhorse buffer used when
    building pre-order document arenas and inverted-index posting lists. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] is an empty array list. [capacity] pre-sizes the backing
    store (default 16); it is a hint only. *)

val make : int -> 'a -> 'a t
(** [make n x] is an array list of length [n] filled with [x]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get t i] is the [i]-th element. @raise Invalid_argument if out of
    bounds. *)

val set : 'a t -> int -> 'a -> unit
(** [set t i x] replaces the [i]-th element. @raise Invalid_argument if out
    of bounds. *)

val push : 'a t -> 'a -> unit
(** [push t x] appends [x] at the end. *)

val pop : 'a t -> 'a
(** [pop t] removes and returns the last element.
    @raise Invalid_argument on an empty array list. *)

val last : 'a t -> 'a
(** [last t] is the last element. @raise Invalid_argument if empty. *)

val clear : 'a t -> unit
(** [clear t] removes all elements (keeps the backing store). *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val map : ('a -> 'b) -> 'a t -> 'b t

val exists : ('a -> bool) -> 'a t -> bool

val to_array : 'a t -> 'a array
(** [to_array t] is a fresh array with the elements of [t] in order. *)

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** [sort cmp t] sorts [t] in place. *)
