(** Character-level cursor shared by the XML and DTD parsers.

    A lexer is a read-only view over a byte string with line/column
    tracking. All [expect]/[take] primitives raise {!Error.Parse_error} on
    mismatch with the current position attached. *)

type t

val of_string : string -> t

val position : t -> Error.position

val at_end : t -> bool

val peek : t -> char option
(** Current character without consuming it. *)

val peek2 : t -> char option
(** Character after the current one. *)

val advance : t -> unit
(** Consume one character. No-op at end of input. *)

val next : t -> char
(** Consume and return the current character.
    @raise Error.Parse_error at end of input. *)

val looking_at : t -> string -> bool
(** [looking_at t s] is true when the unconsumed input starts with [s]. *)

val eat : t -> string -> bool
(** [eat t s] consumes [s] if the input starts with it. *)

val expect : t -> string -> unit
(** Like {!eat} but raises if the literal is not present. *)

val skip_whitespace : t -> unit
(** Consume spaces, tabs, carriage returns and newlines. *)

val expect_whitespace : t -> unit
(** Require at least one whitespace character, then skip the run. *)

val take_while : t -> (char -> bool) -> string
(** Longest (possibly empty) prefix of characters satisfying the
    predicate. *)

val take_until : t -> string -> string
(** [take_until t stop] consumes up to, but not including, the next
    occurrence of [stop]. @raise Error.Parse_error when [stop] never
    occurs. *)

val is_name_start : char -> bool
(** Letter, [_] or [:] — the XML 1.0 NameStartChar set restricted to
    ASCII, plus bytes >= 0x80 so UTF-8 multibyte names pass through. *)

val is_name_char : char -> bool

val take_name : t -> string
(** An XML Name. @raise Error.Parse_error if the input does not start with
    a name character. *)

val fail : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise a parse error at the current position. *)
