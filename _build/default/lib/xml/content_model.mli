(** DTD element content models and their repetition analysis.

    The paper's node classification (§2.1, following Liu & Chen [6]) hinges
    on whether a child tag is a "*-node" under its parent — i.e. whether the
    content model allows the tag to occur more than once. This module
    answers that question from a parsed model. *)

type rep =
  | Once  (** exactly one *)
  | Opt   (** [?] — zero or one *)
  | Star  (** [*] — zero or more *)
  | Plus  (** [+] — one or more *)

type particle = {
  item : item;
  rep : rep;
}

and item =
  | Name of string
  | Seq of particle list     (** [(a, b, c)] *)
  | Choice of particle list  (** [(a | b | c)] *)

type t =
  | Empty                 (** [EMPTY] *)
  | Any                   (** [ANY] *)
  | Pcdata                (** [(#PCDATA)] *)
  | Mixed of string list  (** [(#PCDATA | a | b)*] *)
  | Children of particle

val declared_children : t -> string list
(** All child tags mentioned by the model, in first-mention order, without
    duplicates. [Any] declares none (anything goes). *)

val may_repeat : t -> string -> bool
(** [may_repeat model tag] is [true] when a conforming parent may contain
    two or more [tag] children: the tag sits under a [*]/[+] particle (at
    any depth), is mentioned more than once in a sequence, or the model is
    [Mixed] or [Any]. This is exactly the "*-node" test of the paper. *)

val allows_text : t -> bool
(** Whether character data may appear ([Pcdata], [Mixed] or [Any]). *)

val pp : Format.formatter -> t -> unit
(** Prints the model back in DTD syntax. *)

val to_string : t -> string
