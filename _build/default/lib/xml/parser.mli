(** Recursive-descent parser for the XML 1.0 subset used by eXtract.

    Supported: prolog, [<!DOCTYPE name [internal subset]>] (the subset is
    captured verbatim for {!Dtd.parse}), elements, attributes with single or
    double quotes, character data, CDATA sections, comments, processing
    instructions, character references ([&#10;], [&#x0A;]) and the five
    predefined entities. Not supported (rejected with a parse error rather
    than mis-parsed): external DTD content, parameter entities in content,
    and custom general entities.

    Whitespace-only text between elements is dropped by default, matching
    how data-centric XML databases load documents; pass
    [~keep_whitespace:true] to retain it. Adjacent text/CDATA runs are
    merged into one {!Types.Text} node. *)

val parse_document : ?keep_whitespace:bool -> string -> Types.document
(** Parse a complete document. @raise Error.Parse_error on malformed
    input. *)

val parse : ?keep_whitespace:bool -> string -> Types.t
(** Parse and return just the root element (as a {!Types.Element}). *)

val parse_file : ?keep_whitespace:bool -> string -> Types.document
(** Read a file and parse it. @raise Sys_error on IO failure. *)
