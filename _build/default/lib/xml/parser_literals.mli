(** Shared literal readers for the XML and DTD parsers. *)

val quoted : Lexer.t -> string
(** Read a single- or double-quoted literal, verbatim (no reference
    expansion — DTD default values are stored as written).
    @raise Error.Parse_error if the input does not start with a quote. *)
