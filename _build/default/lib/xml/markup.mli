(** Shared markup-level parsing helpers used by both the tree parser
    ({!Parser}) and the streaming parser ({!Sax}). Internal — the stable
    entry points are [Parser.parse*] and [Sax.fold*]. *)

val parse_reference : Lexer.t -> string
(** After ['&']: a character or predefined-entity reference, decoded to
    UTF-8 bytes. *)

val parse_attributes : Lexer.t -> Types.attribute list
(** Whitespace-separated [name="value"] pairs, duplicates rejected. *)

val is_blank : string -> bool

val skip_comment : Lexer.t -> unit
(** After ["<!--"]. *)

val skip_pi : Lexer.t -> unit
(** After ["<?"]. *)

val parse_doctype : Lexer.t -> string option
(** After ["<!DOCTYPE"]; returns the internal subset, if any. *)

val skip_misc : Lexer.t -> unit
(** Whitespace, comments and non-prolog processing instructions. *)

val parse_prolog : Lexer.t -> string option
(** BOM, XML declaration, misc, optional DOCTYPE (returning its internal
    subset), misc — leaves the lexer at the root element's ['<']. *)
