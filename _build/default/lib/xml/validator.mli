(** DTD validation of parsed documents.

    Checks every element against its [<!ELEMENT>] declaration: child
    sequences are matched against the content model with Brzozowski
    derivatives over the particle grammar (no automaton construction
    needed; models are tiny), [EMPTY] elements must be empty, [(#PCDATA)]
    elements must not contain child elements, and character data is only
    allowed where the model permits it. Elements with no declaration are
    reported when [strict] is set and ignored otherwise.

    The dataset generators are validated against their own DTDs in the
    test suite — a generator regression cannot silently ship malformed
    data into the benchmarks. *)

type violation = {
  element : string;       (** tag of the offending element *)
  kind : violation_kind;
}

and violation_kind =
  | Undeclared_element
  | Unexpected_children of string list
      (** the child-tag sequence did not match the content model *)
  | Unexpected_text
  | Expected_empty

val validate : ?strict:bool -> Dtd.t -> Types.element -> violation list
(** All violations in the subtree, pre-order. [strict] (default false)
    also reports elements without a declaration. An empty DTD validates
    everything vacuously (non-strict). *)

val is_valid : ?strict:bool -> Dtd.t -> Types.element -> bool

val matches_model : Content_model.t -> string list -> bool
(** Does a child-tag sequence satisfy a content model? ([Pcdata]/[Empty]
    accept only the empty sequence; [Any] and [Mixed] accept declared
    tags in any number and order.) *)

val pp_violation : Format.formatter -> violation -> unit
