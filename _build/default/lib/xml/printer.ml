let escape gen s =
  let needs_escape = String.exists (fun c -> gen c <> None) s in
  if not needs_escape then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match gen c with
        | Some rep -> Buffer.add_string buf rep
        | None -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let escape_text =
  escape (function
    | '&' -> Some "&amp;"
    | '<' -> Some "&lt;"
    | '>' -> Some "&gt;"
    | _ -> None)

let escape_attr =
  escape (function
    | '&' -> Some "&amp;"
    | '<' -> Some "&lt;"
    | '>' -> Some "&gt;"
    | '"' -> Some "&quot;"
    | '\'' -> Some "&apos;"
    | _ -> None)

let add_attrs buf attrs =
  List.iter
    (fun (a : Types.attribute) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf a.name;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape_attr a.value);
      Buffer.add_char buf '"')
    attrs

let rec emit buf ~indent ~level node =
  let pad n =
    match indent with
    | Some step ->
      if Buffer.length buf > 0 then Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (step * n) ' ')
    | None -> ()
  in
  match node with
  | Types.Text s ->
    pad level;
    Buffer.add_string buf (escape_text s)
  | Types.Element e ->
    pad level;
    Buffer.add_char buf '<';
    Buffer.add_string buf e.tag;
    add_attrs buf e.attrs;
    (match e.children with
    | [] -> Buffer.add_string buf "/>"
    | [ Types.Text s ] ->
      (* keep leaf elements on one line: <name>value</name> *)
      Buffer.add_char buf '>';
      Buffer.add_string buf (escape_text s);
      Buffer.add_string buf "</";
      Buffer.add_string buf e.tag;
      Buffer.add_char buf '>'
    | children ->
      Buffer.add_char buf '>';
      List.iter (emit buf ~indent ~level:(level + 1)) children;
      pad level;
      Buffer.add_string buf "</";
      Buffer.add_string buf e.tag;
      Buffer.add_char buf '>')

let to_string ?(indent = Some 2) node =
  let buf = Buffer.create 1024 in
  emit buf ~indent ~level:0 node;
  Buffer.contents buf

let document_to_string ?(indent = Some 2) ?dtd (doc : Types.document) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  (match dtd, doc.dtd with
  | Some subset, _ | None, Some subset ->
    Buffer.add_string buf "<!DOCTYPE ";
    Buffer.add_string buf doc.root.tag;
    Buffer.add_string buf " [";
    Buffer.add_string buf subset;
    Buffer.add_string buf "]>\n"
  | None, None -> ());
  Buffer.add_string buf (to_string ~indent (Types.Element doc.root));
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_channel oc ?indent node = output_string oc (to_string ?indent node)

let write_file path ?indent doc =
  let oc = open_out_bin path in
  (try output_string oc (document_to_string ?indent doc)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc
