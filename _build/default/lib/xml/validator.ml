type violation = {
  element : string;
  kind : violation_kind;
}

and violation_kind =
  | Undeclared_element
  | Unexpected_children of string list
  | Unexpected_text
  | Expected_empty

(* Brzozowski derivatives over particles. [nullable p] — does p accept the
   empty sequence; [deriv p tag] — the residual particle after consuming
   one occurrence of [tag], or None when [tag] cannot come first. Particles
   are rewritten with explicit combinators to keep derivatives small. *)
module Deriv = struct
  open Content_model

  type expr =
    | Empty_set          (* accepts nothing *)
    | Epsilon            (* accepts the empty sequence *)
    | Sym of string
    | Alt of expr * expr
    | Cat of expr * expr
    | Star of expr

  let rec of_particle (p : particle) =
    let base =
      match p.item with
      | Name t -> Sym t
      | Seq ps -> List.fold_right (fun q acc -> Cat (of_particle q, acc)) ps Epsilon
      | Choice ps ->
        List.fold_right (fun q acc -> Alt (of_particle q, acc)) ps Empty_set
    in
    match p.rep with
    | Once -> base
    | Opt -> Alt (base, Epsilon)
    | Star -> Star base
    | Plus -> Cat (base, Star base)

  let rec nullable = function
    | Empty_set | Sym _ -> false
    | Epsilon | Star _ -> true
    | Alt (a, b) -> nullable a || nullable b
    | Cat (a, b) -> nullable a && nullable b

  let rec deriv e tag =
    match e with
    | Empty_set | Epsilon -> Empty_set
    | Sym t -> if t = tag then Epsilon else Empty_set
    | Alt (a, b) -> Alt (deriv a tag, deriv b tag)
    | Cat (a, b) ->
      let da = Cat (deriv a tag, b) in
      if nullable a then Alt (da, deriv b tag) else da
    | Star a -> Cat (deriv a tag, Star a)

  (* Light simplification keeps the expression from blowing up on long
     child sequences. *)
  let rec simplify = function
    | Alt (a, b) -> begin
      match simplify a, simplify b with
      | Empty_set, x | x, Empty_set -> x
      | Epsilon, x when nullable x -> x
      | x, Epsilon when nullable x -> x
      | a, b -> Alt (a, b)
    end
    | Cat (a, b) -> begin
      match simplify a, simplify b with
      | Empty_set, _ | _, Empty_set -> Empty_set
      | Epsilon, x | x, Epsilon -> x
      | a, b -> Cat (a, b)
    end
    | Star a -> begin
      match simplify a with
      | Empty_set | Epsilon -> Epsilon
      | a -> Star a
    end
    | e -> e

  let accepts particle tags =
    let rec run e = function
      | [] -> nullable e
      | tag :: rest -> begin
        match simplify (deriv e tag) with
        | Empty_set -> false
        | e -> run e rest
      end
    in
    run (simplify (of_particle particle)) tags
end

let matches_model model tags =
  match model with
  | Content_model.Empty -> tags = []
  | Content_model.Pcdata -> tags = []
  | Content_model.Any -> true
  | Content_model.Mixed allowed -> List.for_all (fun t -> List.mem t allowed) tags
  | Content_model.Children p -> Deriv.accepts p tags

let has_text (e : Types.element) =
  List.exists
    (function
      | Types.Text s -> String.trim s <> ""
      | Types.Element _ -> false)
    e.Types.children

let child_tags (e : Types.element) =
  List.filter_map
    (function
      | Types.Element c -> Some c.Types.tag
      | Types.Text _ -> None)
    e.Types.children

let validate ?(strict = false) dtd root =
  let violations = ref [] in
  let report element kind = violations := { element; kind } :: !violations in
  let rec walk (e : Types.element) =
    (match Dtd.element_model dtd e.Types.tag with
    | None -> if strict then report e.Types.tag Undeclared_element
    | Some model ->
      let tags = child_tags e in
      (match model with
      | Content_model.Empty ->
        if e.Types.children <> [] then report e.Types.tag Expected_empty
      | Content_model.Pcdata ->
        if tags <> [] then report e.Types.tag (Unexpected_children tags)
      | Content_model.Any -> ()
      | Content_model.Mixed _ ->
        if not (matches_model model tags) then report e.Types.tag (Unexpected_children tags)
      | Content_model.Children _ ->
        if not (matches_model model tags) then report e.Types.tag (Unexpected_children tags);
        if has_text e then report e.Types.tag Unexpected_text));
    List.iter
      (function
        | Types.Element c -> walk c
        | Types.Text _ -> ())
      e.Types.children
  in
  walk root;
  List.rev !violations

let is_valid ?strict dtd root = validate ?strict dtd root = []

let pp_violation ppf v =
  match v.kind with
  | Undeclared_element -> Format.fprintf ppf "<%s>: no declaration" v.element
  | Unexpected_children tags ->
    Format.fprintf ppf "<%s>: children (%s) do not match the content model" v.element
      (String.concat ", " tags)
  | Unexpected_text -> Format.fprintf ppf "<%s>: character data not allowed" v.element
  | Expected_empty -> Format.fprintf ppf "<%s>: declared EMPTY but has content" v.element
