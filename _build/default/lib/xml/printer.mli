(** XML serialization. Round-trips with {!Parser}: for any tree [t],
    [Parser.parse (to_string t)] is structurally equal to [t] (up to the
    parser's whitespace policy — use [~indent:None] for exact
    round-trips). *)

val escape_text : string -> string
(** Escape [&], [<] and [>] for character data. *)

val escape_attr : string -> string
(** Escape ampersand, angle brackets and both quote characters for
    attribute values. *)

val to_string : ?indent:int option -> Types.t -> string
(** Serialize a tree. [indent] is the indentation step: [Some 2] (default)
    pretty-prints with 2-space indentation and newlines — safe for
    data-centric XML where elements contain either text or elements, not
    both; [None] emits everything on one line with no inserted
    whitespace. *)

val document_to_string : ?indent:int option -> ?dtd:string -> Types.document -> string
(** Serialize a full document with an XML declaration, and a DOCTYPE when
    the document carries an internal subset (or [dtd] is given). *)

val to_channel : out_channel -> ?indent:int option -> Types.t -> unit

val write_file : string -> ?indent:int option -> Types.document -> unit
