type rep = Once | Opt | Star | Plus

type particle = { item : item; rep : rep }

and item =
  | Name of string
  | Seq of particle list
  | Choice of particle list

type t =
  | Empty
  | Any
  | Pcdata
  | Mixed of string list
  | Children of particle

let declared_children model =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let note tag =
    if not (Hashtbl.mem seen tag) then begin
      Hashtbl.add seen tag ();
      out := tag :: !out
    end
  in
  let rec walk p =
    match p.item with
    | Name tag -> note tag
    | Seq ps | Choice ps -> List.iter walk ps
  in
  (match model with
  | Empty | Any | Pcdata -> ()
  | Mixed tags -> List.iter note tags
  | Children p -> walk p);
  List.rev !out

(* Maximum number of occurrences of [tag] permitted by the model: we only
   care whether it is 0, 1, or "2+" so we saturate at 2. *)
let may_repeat model tag =
  let saturate n = min n 2 in
  let rec max_occurs p =
    let inner =
      match p.item with
      | Name t -> if t = tag then 1 else 0
      | Seq ps -> saturate (List.fold_left (fun acc q -> acc + max_occurs q) 0 ps)
      | Choice ps -> List.fold_left (fun acc q -> max acc (max_occurs q)) 0 ps
    in
    match p.rep with
    | Once | Opt -> inner
    | Star | Plus -> if inner > 0 then 2 else 0
  in
  match model with
  | Empty | Pcdata -> false
  | Any -> true
  | Mixed tags -> List.mem tag tags
  | Children p -> max_occurs p >= 2

let allows_text = function
  | Pcdata | Mixed _ | Any -> true
  | Empty | Children _ -> false

let rep_suffix = function
  | Once -> ""
  | Opt -> "?"
  | Star -> "*"
  | Plus -> "+"

let rec pp_particle ppf p =
  (match p.item with
  | Name tag -> Format.pp_print_string ppf tag
  | Seq ps -> pp_group ppf ", " ps
  | Choice ps -> pp_group ppf " | " ps);
  Format.pp_print_string ppf (rep_suffix p.rep)

and pp_group ppf sep ps =
  Format.pp_print_char ppf '(';
  List.iteri
    (fun i p ->
      if i > 0 then Format.pp_print_string ppf sep;
      pp_particle ppf p)
    ps;
  Format.pp_print_char ppf ')'

let pp ppf = function
  | Empty -> Format.pp_print_string ppf "EMPTY"
  | Any -> Format.pp_print_string ppf "ANY"
  | Pcdata -> Format.pp_print_string ppf "(#PCDATA)"
  | Mixed [] -> Format.pp_print_string ppf "(#PCDATA)*"
  | Mixed tags ->
    Format.fprintf ppf "(#PCDATA | %s)*" (String.concat " | " tags)
  | Children p -> pp_particle ppf p

let to_string model = Format.asprintf "%a" pp model
