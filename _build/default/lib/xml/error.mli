(** Source positions and parse errors for the XML and DTD parsers. *)

type position = {
  line : int;    (** 1-based *)
  column : int;  (** 1-based, in bytes *)
  offset : int;  (** 0-based byte offset *)
}

val start_position : position

exception Parse_error of position * string
(** Raised by {!Extract_xml.Parser} and {!Extract_xml.Dtd} on malformed
    input. *)

val fail : position -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [fail pos fmt ...] raises {!Parse_error} with a formatted message. *)

val pp_position : Format.formatter -> position -> unit

val to_string : position -> string -> string
(** [to_string pos msg] is ["line L, column C: msg"]. *)
