let resolve_named_entity lx name =
  match name with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "apos" -> "'"
  | "quot" -> "\""
  | _ -> Lexer.fail lx "unknown entity &%s; (custom general entities are not supported)" name

(* Encode a Unicode scalar value as UTF-8 bytes. *)
let utf8_encode lx code =
  let buf = Buffer.create 4 in
  if code < 0 then Lexer.fail lx "negative character reference"
  else if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code <= 0x10FFFF then begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else Lexer.fail lx "character reference out of Unicode range: %d" code;
  Buffer.contents buf

let parse_reference lx =
  if Lexer.eat lx "#x" || Lexer.eat lx "#X" then begin
    let digits = Lexer.take_while lx (function
      | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
      | _ -> false)
    in
    if digits = "" then Lexer.fail lx "empty hexadecimal character reference";
    Lexer.expect lx ";";
    utf8_encode lx (int_of_string ("0x" ^ digits))
  end
  else if Lexer.eat lx "#" then begin
    let digits = Lexer.take_while lx (function '0' .. '9' -> true | _ -> false) in
    if digits = "" then Lexer.fail lx "empty character reference";
    Lexer.expect lx ";";
    utf8_encode lx (int_of_string digits)
  end
  else begin
    let name = Lexer.take_name lx in
    Lexer.expect lx ";";
    resolve_named_entity lx name
  end

let parse_attr_value lx =
  let quote =
    match Lexer.peek lx with
    | Some ('"' as q) | Some ('\'' as q) ->
      Lexer.advance lx;
      q
    | _ -> Lexer.fail lx "expected a quoted attribute value"
  in
  let buf = Buffer.create 16 in
  let rec loop () =
    match Lexer.peek lx with
    | None -> Lexer.fail lx "unterminated attribute value"
    | Some c when c = quote -> Lexer.advance lx
    | Some '<' -> Lexer.fail lx "'<' is not allowed in attribute values"
    | Some '&' ->
      Lexer.advance lx;
      Buffer.add_string buf (parse_reference lx);
      loop ()
    | Some c ->
      Lexer.advance lx;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_attributes lx =
  let rec loop acc =
    Lexer.skip_whitespace lx;
    match Lexer.peek lx with
    | Some c when Lexer.is_name_start c ->
      let name = Lexer.take_name lx in
      Lexer.skip_whitespace lx;
      Lexer.expect lx "=";
      Lexer.skip_whitespace lx;
      let value = parse_attr_value lx in
      if List.exists (fun (a : Types.attribute) -> a.name = name) acc then
        Lexer.fail lx "duplicate attribute %S" name;
      loop ({ Types.name; value } :: acc)
    | _ -> List.rev acc
  in
  loop []

let is_blank s = String.for_all (function ' ' | '\t' | '\r' | '\n' -> true | _ -> false) s

let skip_comment lx =
  let _ = Lexer.take_until lx "--" in
  Lexer.expect lx "--";
  if not (Lexer.eat lx ">") then Lexer.fail lx "'--' is not allowed inside comments"

let skip_pi lx =
  let _ = Lexer.take_until lx "?>" in
  Lexer.expect lx "?>"

(* [<!DOCTYPE name SYSTEM "..." [subset]>]; we capture the bracketed
   internal subset verbatim and ignore external identifiers. *)
let parse_doctype lx =
  Lexer.expect_whitespace lx;
  let _name = Lexer.take_name lx in
  Lexer.skip_whitespace lx;
  if Lexer.eat lx "SYSTEM" then begin
    Lexer.skip_whitespace lx;
    let _ = parse_attr_value lx in
    Lexer.skip_whitespace lx
  end
  else if Lexer.eat lx "PUBLIC" then begin
    Lexer.skip_whitespace lx;
    let _ = parse_attr_value lx in
    Lexer.skip_whitespace lx;
    let _ = parse_attr_value lx in
    Lexer.skip_whitespace lx
  end;
  let subset =
    if Lexer.eat lx "[" then begin
      let s = Lexer.take_until lx "]" in
      Lexer.expect lx "]";
      Lexer.skip_whitespace lx;
      Some s
    end
    else None
  in
  Lexer.expect lx ">";
  subset

let skip_misc lx =
  let rec loop () =
    Lexer.skip_whitespace lx;
    if Lexer.eat lx "<!--" then begin
      skip_comment lx;
      loop ()
    end
    else if Lexer.looking_at lx "<?" && not (Lexer.looking_at lx "<?xml ") then begin
      Lexer.expect lx "<?";
      skip_pi lx;
      loop ()
    end
  in
  loop ()

let parse_prolog lx =
  let _ = Lexer.eat lx "\xEF\xBB\xBF" in
  if Lexer.looking_at lx "<?xml " || Lexer.looking_at lx "<?xml?" then begin
    Lexer.expect lx "<?";
    skip_pi lx
  end;
  skip_misc lx;
  let dtd = if Lexer.eat lx "<!DOCTYPE" then parse_doctype lx else None in
  skip_misc lx;
  dtd
