let quoted lx =
  match Lexer.peek lx with
  | Some ('"' as q) | Some ('\'' as q) ->
    Lexer.advance lx;
    let body = Lexer.take_until lx (String.make 1 q) in
    Lexer.expect lx (String.make 1 q);
    body
  | _ -> Lexer.fail lx "expected a quoted literal"
