(** DTD internal-subset parser.

    Parses [<!ELEMENT ...>] declarations into {!Content_model.t} and records
    [<!ATTLIST ...>] declarations. [<!ENTITY ...>] and [<!NOTATION ...>]
    declarations, comments and processing instructions are skipped.
    Parameter-entity references are rejected (the synthetic datasets and the
    demo datasets do not use them).

    The classifier in {!Extract_store.Node_kind} consults
    {!is_star_child}; when a document has no DTD the same question is
    answered from the data by {!Extract_store.Schema_infer}. *)

type attribute_decl = {
  att_name : string;
  att_type : string;   (** e.g. [CDATA], [ID], [(a|b)] — kept verbatim *)
  att_default : string; (** e.g. [#REQUIRED], [#IMPLIED], or a literal *)
}

type t

val empty : t
(** A DTD declaring nothing ([element_model] is always [None]). *)

val parse : string -> t
(** Parse an internal subset (the text between [\[] and [\]] of a DOCTYPE).
    @raise Error.Parse_error on malformed declarations. *)

val of_document : Types.document -> t
(** [parse] applied to the document's captured subset, or {!empty}. *)

val element_names : t -> string list
(** Declared element names, in declaration order. *)

val element_model : t -> string -> Content_model.t option

val attributes : t -> string -> attribute_decl list
(** Declared XML attributes of an element (empty when undeclared). *)

val is_star_child : t -> parent:string -> child:string -> bool option
(** [Some b] when [parent] is declared, where [b] tells whether [child] may
    occur more than once under it; [None] when [parent] has no
    declaration. *)

val pp : Format.formatter -> t -> unit
(** Prints the subset back in DTD syntax (element declarations only). *)
