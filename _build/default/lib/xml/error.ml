type position = { line : int; column : int; offset : int }

let start_position = { line = 1; column = 1; offset = 0 }

exception Parse_error of position * string

let fail pos fmt = Format.kasprintf (fun msg -> raise (Parse_error (pos, msg))) fmt

let pp_position ppf pos = Format.fprintf ppf "line %d, column %d" pos.line pos.column

let to_string pos msg = Format.asprintf "%a: %s" pp_position pos msg

let () =
  Printexc.register_printer (function
    | Parse_error (pos, msg) -> Some (Format.asprintf "XML parse error at %a: %s" pp_position pos msg)
    | _ -> None)
