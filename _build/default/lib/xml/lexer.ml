type t = {
  input : string;
  len : int;
  mutable offset : int;
  mutable line : int;
  mutable column : int;
}

let of_string input = { input; len = String.length input; offset = 0; line = 1; column = 1 }

let position t = { Error.line = t.line; column = t.column; offset = t.offset }

let at_end t = t.offset >= t.len

let peek t = if at_end t then None else Some t.input.[t.offset]

let peek2 t = if t.offset + 1 >= t.len then None else Some t.input.[t.offset + 1]

let advance t =
  if not (at_end t) then begin
    if t.input.[t.offset] = '\n' then begin
      t.line <- t.line + 1;
      t.column <- 1
    end
    else t.column <- t.column + 1;
    t.offset <- t.offset + 1
  end

let fail t fmt = Error.fail (position t) fmt

let next t =
  match peek t with
  | None -> fail t "unexpected end of input"
  | Some c ->
    advance t;
    c

let looking_at t s =
  let n = String.length s in
  t.offset + n <= t.len && String.sub t.input t.offset n = s

let eat t s =
  if looking_at t s then begin
    String.iter (fun _ -> advance t) s;
    true
  end
  else false

let expect t s = if not (eat t s) then fail t "expected %S" s

let is_space = function
  | ' ' | '\t' | '\r' | '\n' -> true
  | _ -> false

let skip_whitespace t =
  while (not (at_end t)) && is_space t.input.[t.offset] do
    advance t
  done

let expect_whitespace t =
  match peek t with
  | Some c when is_space c -> skip_whitespace t
  | _ -> fail t "expected whitespace"

let take_while t pred =
  let start = t.offset in
  while (not (at_end t)) && pred t.input.[t.offset] do
    advance t
  done;
  String.sub t.input start (t.offset - start)

let take_until t stop =
  let start = t.offset in
  let rec loop () =
    if at_end t then fail t "unterminated construct: expected %S" stop
    else if looking_at t stop then String.sub t.input start (t.offset - start)
    else begin
      advance t;
      loop ()
    end
  in
  loop ()

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':' || Char.code c >= 0x80

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let take_name t =
  match peek t with
  | Some c when is_name_start c ->
    let s = take_while t is_name_char in
    s
  | Some c -> fail t "expected a name, found %C" c
  | None -> fail t "expected a name, found end of input"
