(** Parsed XML documents as ordinary trees.

    This is the exchange representation between the parser, the dataset
    generators, and the column-oriented arena ({!Extract_store.Document})
    that the search and snippet algorithms actually run on. *)

type attribute = { name : string; value : string }

type t =
  | Element of element
  | Text of string
      (** Character data. The parser collapses adjacent text and CDATA runs
          into a single [Text] node and drops whitespace-only runs between
          elements. *)

and element = {
  tag : string;
  attrs : attribute list;
  children : t list;
}

type document = {
  dtd : string option;
      (** Raw internal DTD subset from [<!DOCTYPE name [ ... ]>], if any,
          ready for {!Dtd.parse}. *)
  root : element;
}

val element : ?attrs:(string * string) list -> string -> t list -> t
(** [element tag children] builds an element node. *)

val text : string -> t

val leaf : string -> string -> t
(** [leaf tag value] is [element tag [text value]] — the shape of an XML
    "attribute" in the entity/attribute/connection sense of the paper. *)

val tag : t -> string option
(** [tag n] is the element tag, or [None] for text nodes. *)

val child_elements : element -> element list

val find_child : element -> string -> element option
(** First child element with the given tag. *)

val find_children : element -> string -> element list

val text_content : t -> string
(** Concatenation of all text in the subtree, in document order. *)

val immediate_text : element -> string
(** Concatenation of the element's direct text children only. *)

val attr : element -> string -> string option

val count_nodes : t -> int
(** Elements and text nodes in the subtree, including the root. *)

val count_elements : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Debug printer (single line, not escaping-complete; use
    {!Printer.to_string} for serialization). *)
