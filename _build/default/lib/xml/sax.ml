type event =
  | Start_element of string * (string * string) list
  | Text of string
  | End_element of string

(* One pass with an explicit open-element stack; text runs are buffered and
   flushed (merged) before any structural event, mirroring the tree
   parser's node shape. *)
let fold_document ?(keep_whitespace = false) input ~init ~f =
  let lx = Lexer.of_string input in
  let dtd = Markup.parse_prolog lx in
  let acc = ref init in
  let emit ev = acc := f !acc ev in
  let text_buf = Buffer.create 64 in
  let flush_text () =
    if Buffer.length text_buf > 0 then begin
      let s = Buffer.contents text_buf in
      Buffer.clear text_buf;
      if keep_whitespace || not (Markup.is_blank s) then emit (Text s)
    end
  in
  let stack = ref [] in
  let open_element () =
    let tag = Lexer.take_name lx in
    let attrs = Markup.parse_attributes lx in
    let attrs = List.map (fun (a : Types.attribute) -> a.Types.name, a.Types.value) attrs in
    Lexer.skip_whitespace lx;
    emit (Start_element (tag, attrs));
    if Lexer.eat lx "/>" then emit (End_element tag)
    else begin
      Lexer.expect lx ">";
      stack := tag :: !stack
    end
  in
  (* root element *)
  Lexer.expect lx "<";
  (match Lexer.peek lx with
  | Some c when Lexer.is_name_start c -> ()
  | _ -> Lexer.fail lx "expected the root element");
  open_element ();
  while !stack <> [] do
    match Lexer.peek lx with
    | None ->
      (match !stack with
      | parent :: _ -> Lexer.fail lx "unterminated element <%s>" parent
      | [] -> assert false)
    | Some '<' ->
      if Lexer.looking_at lx "</" then begin
        flush_text ();
        Lexer.expect lx "</";
        let close = Lexer.take_name lx in
        Lexer.skip_whitespace lx;
        Lexer.expect lx ">";
        (match !stack with
        | parent :: rest ->
          if close <> parent then
            Lexer.fail lx "mismatched closing tag: expected </%s>, found </%s>" parent close;
          stack := rest;
          emit (End_element close)
        | [] -> assert false)
      end
      else if Lexer.eat lx "<!--" then Markup.skip_comment lx
      else if Lexer.eat lx "<![CDATA[" then begin
        let data = Lexer.take_until lx "]]>" in
        Lexer.expect lx "]]>";
        Buffer.add_string text_buf data
      end
      else if Lexer.eat lx "<?" then Markup.skip_pi lx
      else begin
        flush_text ();
        Lexer.expect lx "<";
        open_element ()
      end
    | Some '&' ->
      Lexer.advance lx;
      Buffer.add_string text_buf (Markup.parse_reference lx)
    | Some c ->
      Lexer.advance lx;
      Buffer.add_char text_buf c
  done;
  Markup.skip_misc lx;
  if not (Lexer.at_end lx) then Lexer.fail lx "trailing content after the root element";
  !acc, dtd

let fold ?keep_whitespace input ~init ~f =
  fst (fold_document ?keep_whitespace input ~init ~f)

let events ?keep_whitespace input =
  List.rev (fold ?keep_whitespace input ~init:[] ~f:(fun acc ev -> ev :: acc))

let count_elements input =
  fold input ~init:0 ~f:(fun n ev ->
      match ev with
      | Start_element _ -> n + 1
      | Text _ | End_element _ -> n)
