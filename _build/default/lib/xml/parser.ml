let rec parse_element lx ~keep_whitespace =
  (* after '<' *)
  let tag = Lexer.take_name lx in
  let attrs = Markup.parse_attributes lx in
  Lexer.skip_whitespace lx;
  if Lexer.eat lx "/>" then { Types.tag; attrs; children = [] }
  else begin
    Lexer.expect lx ">";
    let children = parse_content lx ~keep_whitespace ~parent:tag in
    { Types.tag; attrs; children }
  end

and parse_content lx ~keep_whitespace ~parent =
  let children = ref [] in
  let text_buf = Buffer.create 16 in
  let flush_text () =
    if Buffer.length text_buf > 0 then begin
      let s = Buffer.contents text_buf in
      Buffer.clear text_buf;
      if keep_whitespace || not (Markup.is_blank s) then children := Types.Text s :: !children
    end
  in
  let rec loop () =
    match Lexer.peek lx with
    | None -> Lexer.fail lx "unterminated element <%s>" parent
    | Some '<' ->
      if Lexer.looking_at lx "</" then begin
        flush_text ();
        Lexer.expect lx "</";
        let close = Lexer.take_name lx in
        Lexer.skip_whitespace lx;
        Lexer.expect lx ">";
        if close <> parent then
          Lexer.fail lx "mismatched closing tag: expected </%s>, found </%s>" parent close
      end
      else if Lexer.eat lx "<!--" then begin
        Markup.skip_comment lx;
        loop ()
      end
      else if Lexer.eat lx "<![CDATA[" then begin
        let data = Lexer.take_until lx "]]>" in
        Lexer.expect lx "]]>";
        Buffer.add_string text_buf data;
        loop ()
      end
      else if Lexer.eat lx "<?" then begin
        Markup.skip_pi lx;
        loop ()
      end
      else begin
        flush_text ();
        Lexer.expect lx "<";
        let e = parse_element lx ~keep_whitespace in
        children := Types.Element e :: !children;
        loop ()
      end
    | Some '&' ->
      Lexer.advance lx;
      Buffer.add_string text_buf (Markup.parse_reference lx);
      loop ()
    | Some c ->
      Lexer.advance lx;
      Buffer.add_char text_buf c;
      loop ()
  in
  loop ();
  List.rev !children

let parse_document ?(keep_whitespace = false) input =
  let lx = Lexer.of_string input in
  let dtd = Markup.parse_prolog lx in
  Lexer.expect lx "<";
  (match Lexer.peek lx with
  | Some c when Lexer.is_name_start c -> ()
  | _ -> Lexer.fail lx "expected the root element");
  let root = parse_element lx ~keep_whitespace in
  Markup.skip_misc lx;
  if not (Lexer.at_end lx) then Lexer.fail lx "trailing content after the root element";
  { Types.dtd; root }

let parse ?keep_whitespace input = Types.Element (parse_document ?keep_whitespace input).root

let parse_file ?keep_whitespace path =
  let ic = open_in_bin path in
  let content =
    try really_input_string ic (in_channel_length ic)
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  parse_document ?keep_whitespace content
