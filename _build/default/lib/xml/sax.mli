(** Streaming (SAX-style) XML parsing.

    [fold] walks the document and hands events to a callback without ever
    building a {!Types.t} tree — the store uses it to construct its arena
    in one pass ({!Extract_store.Document.of_string_streaming}), halving
    peak memory on large inputs (benchmark E15).

    Same dialect as {!Parser} (same prolog/DOCTYPE/CDATA/reference
    handling, same whitespace policy), and the two are property-tested to
    agree: folding {!event}s and rebuilding a tree equals [Parser.parse].

    Text is reported after reference expansion and adjacent-run merging,
    exactly like the tree parser; XML attributes are delivered with the
    start-element event in document order. *)

type event =
  | Start_element of string * (string * string) list
      (** tag, attributes (name, value) *)
  | Text of string
  | End_element of string

val fold :
  ?keep_whitespace:bool -> string -> init:'acc -> f:('acc -> event -> 'acc) -> 'acc
(** Run the callback over the document's events. The DOCTYPE internal
    subset is skipped (use {!Parser.parse_document} when you need the
    DTD). @raise Error.Parse_error on malformed input. *)

val fold_document :
  ?keep_whitespace:bool ->
  string ->
  init:'acc ->
  f:('acc -> event -> 'acc) ->
  'acc * string option
(** Like {!fold} but also returns the DOCTYPE internal subset, if any. *)

val events : ?keep_whitespace:bool -> string -> event list
(** All events, in order (convenience for tests). *)

val count_elements : string -> int
(** Number of elements, without building anything. *)
