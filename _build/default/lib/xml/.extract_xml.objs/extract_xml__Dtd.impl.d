lib/xml/dtd.ml: Content_model Format Hashtbl Lexer List Option Parser_literals Types
