lib/xml/markup.mli: Lexer Types
