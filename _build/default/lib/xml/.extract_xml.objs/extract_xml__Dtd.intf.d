lib/xml/dtd.mli: Content_model Format Types
