lib/xml/content_model.mli: Format
