lib/xml/types.mli: Format
