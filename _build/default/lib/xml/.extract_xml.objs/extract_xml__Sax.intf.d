lib/xml/sax.mli:
