lib/xml/error.ml: Format Printexc
