lib/xml/parser.ml: Buffer Lexer List Markup Types
