lib/xml/error.mli: Format
