lib/xml/validator.ml: Content_model Dtd Format List String Types
