lib/xml/parser.mli: Types
