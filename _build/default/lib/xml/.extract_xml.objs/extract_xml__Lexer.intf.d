lib/xml/lexer.mli: Error Format
