lib/xml/printer.ml: Buffer List String Types
