lib/xml/sax.ml: Buffer Lexer List Markup Types
