lib/xml/markup.ml: Buffer Char Lexer List String Types
