lib/xml/types.ml: Format List Stdlib String
