lib/xml/parser_literals.mli: Lexer
