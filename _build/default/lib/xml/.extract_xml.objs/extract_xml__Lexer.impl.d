lib/xml/lexer.ml: Char Error String
