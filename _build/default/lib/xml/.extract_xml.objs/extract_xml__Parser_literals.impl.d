lib/xml/parser_literals.ml: Lexer String
