lib/xml/validator.mli: Content_model Dtd Format Types
