lib/xml/printer.mli: Types
