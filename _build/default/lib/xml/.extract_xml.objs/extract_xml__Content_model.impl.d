lib/xml/content_model.ml: Format Hashtbl List String
