lib/server/demo_server.mli: Extract_snippet Unix
