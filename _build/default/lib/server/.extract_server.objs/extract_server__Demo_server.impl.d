lib/server/demo_server.ml: Buffer Bytes Char Extract_snippet Extract_store Extract_util Format Fun List Option Printexc Printf String Unix
