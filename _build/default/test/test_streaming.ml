(* Tests for the SAX parser, the streaming arena constructor and index
   completions. *)

module Sax = Extract_xml.Sax
module Parser = Extract_xml.Parser
module Types = Extract_xml.Types
module Document = Extract_store.Document
module Inverted_index = Extract_store.Inverted_index

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* ------------------------------------------------------------------ *)
(* SAX events *)

let test_sax_events_basic () =
  let evs = Sax.events "<a><b>hi</b><c/></a>" in
  check bool "event stream" true
    (evs
    = [
        Sax.Start_element ("a", []);
        Sax.Start_element ("b", []);
        Sax.Text "hi";
        Sax.End_element "b";
        Sax.Start_element ("c", []);
        Sax.End_element "c";
        Sax.End_element "a";
      ])

let test_sax_attributes () =
  let evs = Sax.events {|<a x="1" y="2"/>|} in
  check bool "attrs delivered in order" true
    (evs = [ Sax.Start_element ("a", [ "x", "1"; "y", "2" ]); Sax.End_element "a" ])

let test_sax_references_and_cdata () =
  let evs = Sax.events "<a>&lt;x&gt;<![CDATA[ &raw; ]]></a>" in
  check bool "merged decoded text" true
    (evs = [ Sax.Start_element ("a", []); Sax.Text "<x> &raw; "; Sax.End_element "a" ])

let test_sax_whitespace_policy () =
  let dropped = Sax.events "<a>\n  <b/>\n</a>" in
  check int "whitespace dropped" 4 (List.length dropped);
  let kept = Sax.events ~keep_whitespace:true "<a>\n  <b/>\n</a>" in
  check int "whitespace kept" 6 (List.length kept)

let test_sax_doctype () =
  let _, dtd =
    Sax.fold_document "<!DOCTYPE r [<!ELEMENT r (a*)>]><r><a/></r>" ~init:() ~f:(fun () _ -> ())
  in
  check bool "subset returned" true (dtd = Some "<!ELEMENT r (a*)>")

let test_sax_count_elements () =
  check int "count" 3 (Sax.count_elements "<a><b/><c>t</c></a>")

let test_sax_errors () =
  List.iter
    (fun bad ->
      match Sax.events bad with
      | exception Extract_xml.Error.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error on %S" bad)
    [ "<a>"; "<a></b>"; "<a/><b/>"; "" ]

(* Rebuilding a tree from events equals the tree parser. *)
let rebuild events =
  let rec build evs =
    match evs with
    | Sax.Start_element (tag, attrs) :: rest ->
      let children, rest = children [] rest in
      (match rest with
      | Sax.End_element close :: rest when close = tag ->
        ( Types.Element
            { Types.tag; attrs = List.map (fun (name, value) -> { Types.name; value }) attrs;
              children },
          rest )
      | _ -> Alcotest.fail "unbalanced events")
    | Sax.Text s :: rest -> Types.Text s, rest
    | _ -> Alcotest.fail "unexpected event"
  and children acc evs =
    match evs with
    | Sax.End_element _ :: _ -> List.rev acc, evs
    | [] -> List.rev acc, []
    | _ ->
      let node, rest = build evs in
      children (node :: acc) rest
  in
  fst (build events)

let test_sax_agrees_with_parser () =
  List.iter
    (fun src ->
      let via_tree = Parser.parse src in
      let via_sax = rebuild (Sax.events src) in
      check bool (Printf.sprintf "agree on %s" src) true (Types.equal via_tree via_sax))
    [
      "<a/>";
      "<a><b>x</b><b>y</b></a>";
      {|<a k="v"><b>t1</b>mid<c/></a>|};
      "<r>&amp;&#65;<![CDATA[cd]]></r>";
      "<a><!-- c --><b/><?pi?></a>";
    ]

(* ------------------------------------------------------------------ *)
(* Streaming arena construction *)

let docs_equal a b =
  Document.node_count a = Document.node_count b
  && Document.to_xml a 0 = Document.to_xml b 0
  && Document.element_count a = Document.element_count b

let test_streaming_equals_tree_build () =
  List.iter
    (fun src ->
      let tree = Document.load_string src in
      let streamed = Document.of_string_streaming src in
      check bool (Printf.sprintf "same arena for %s" src) true (docs_equal tree streamed);
      (* spot-check structural metadata *)
      for n = 0 to Document.node_count tree - 1 do
        check int "depth" (Document.depth tree n) (Document.depth streamed n);
        check int "size" (Document.subtree_size tree n) (Document.subtree_size streamed n);
        check bool "parent" true (Document.parent tree n = Document.parent streamed n)
      done)
    [
      "<a/>";
      "<a><b>x</b><b>y</b><c><d>z</d></c></a>";
      {|<a k="v" k2="w"><b>t</b></a>|};
      "<r>text<e/>more</r>";
    ]

let test_streaming_on_generated_dataset () =
  let xml =
    Extract_xml.Printer.document_to_string (Extract_datagen.Movies.sized 20)
  in
  let tree = Document.load_string xml in
  let streamed = Document.of_string_streaming xml in
  check bool "movies dataset" true (docs_equal tree streamed)

let test_streaming_dtd () =
  let d = Document.of_string_streaming "<!DOCTYPE r [<!ELEMENT r (a*)>]><r><a/></r>" in
  check bool "dtd parsed" true (Document.dtd d <> None);
  check bool "source kept" true (Document.dtd_source d = Some "<!ELEMENT r (a*)>")

let test_streaming_pipeline_equivalence () =
  let xml = Extract_xml.Printer.document_to_string (Extract_datagen.Paper_example.document ()) in
  let out doc =
    Extract_snippet.Pipeline.run ~bound:8
      (Extract_snippet.Pipeline.build doc)
      Extract_datagen.Paper_example.query
    |> List.map (fun (r : Extract_snippet.Pipeline.snippet_result) ->
           Extract_snippet.Snippet_tree.render r.selection.snippet)
  in
  check bool "identical snippets" true
    (out (Document.load_string xml) = out (Document.of_string_streaming xml))

(* ------------------------------------------------------------------ *)
(* Index completions *)

let test_complete_basic () =
  let d = Document.load_string "<r><a>houston</a><a>house</a><a>houston</a><b>host</b></r>" in
  let idx = Inverted_index.build d in
  let comps = Inverted_index.complete idx "hou" in
  check bool "houston first (2 postings)" true
    (match comps with
    | ("houston", _) :: _ -> true
    | _ -> false);
  check int "two completions" 2 (List.length comps);
  check bool "host excluded" true (not (List.mem_assoc "host" comps))

let test_complete_normalizes () =
  let d = Document.load_string "<r><a>Texas</a></r>" in
  let idx = Inverted_index.build d in
  check bool "case folded" true (List.mem_assoc "texas" (Inverted_index.complete idx "TEX"))

let test_complete_limit_and_empty () =
  let d = Document.load_string "<r><a>aa ab ac ad ae af</a></r>" in
  let idx = Inverted_index.build d in
  check int "limit" 3 (List.length (Inverted_index.complete idx ~limit:3 "a"));
  check int "empty prefix" 0 (List.length (Inverted_index.complete idx "  "));
  check int "no match" 0 (List.length (Inverted_index.complete idx "zz"))

let suites =
  [
    ( "xml.sax",
      [
        Alcotest.test_case "basic events" `Quick test_sax_events_basic;
        Alcotest.test_case "attributes" `Quick test_sax_attributes;
        Alcotest.test_case "references/cdata" `Quick test_sax_references_and_cdata;
        Alcotest.test_case "whitespace" `Quick test_sax_whitespace_policy;
        Alcotest.test_case "doctype" `Quick test_sax_doctype;
        Alcotest.test_case "count" `Quick test_sax_count_elements;
        Alcotest.test_case "errors" `Quick test_sax_errors;
        Alcotest.test_case "agrees with parser" `Quick test_sax_agrees_with_parser;
      ] );
    ( "store.streaming",
      [
        Alcotest.test_case "equals tree build" `Quick test_streaming_equals_tree_build;
        Alcotest.test_case "generated dataset" `Quick test_streaming_on_generated_dataset;
        Alcotest.test_case "dtd" `Quick test_streaming_dtd;
        Alcotest.test_case "pipeline equivalence" `Quick test_streaming_pipeline_equivalence;
      ] );
    ( "store.completions",
      [
        Alcotest.test_case "basic" `Quick test_complete_basic;
        Alcotest.test_case "normalization" `Quick test_complete_normalizes;
        Alcotest.test_case "limit/empty" `Quick test_complete_limit_and_empty;
      ] );
  ]
