The CLI on the movies dataset: ranked search, biased and differentiated
snippet orderings, and the HTML demo page.

  $ extract gen movies -o movies.xml
  wrote movies.xml

  $ extract search movies.xml "drama movie" --ranked -n 3
  23 result(s)
   1. <movie> (37 nodes)  score=13.980
   2. <movie> (37 nodes)  score=13.980
   3. <movie> (37 nodes)  score=13.980

  $ extract snippet movies.xml "documentary movie" -b 5 -n 1 --order biased
  1 result(s) for "documentary movie", bound 5 edges
  
  --- result 1 -------------------------------------
  movie
  ├── genre "documentary"
  ├── cast
  │   └── actor "Noor Johnson"
  └── reviews
      └── review
  (4/9 IList items, 5 edges)
  

  $ extract snippet movies.xml "drama movie" -b 5 -n 1 --differentiate
  1 result(s) for "drama movie", bound 5 edges
  
  --- result 1 -------------------------------------
  movie
  ├── genre "drama"
  ├── cast
  │   └── actor "Jessica Chen"
  └── reviews
      └── review
  (4/9 IList items, 5 edges)
  

  $ extract explain movies.xml "documentary meridian" -n 1 | head -8
  --- result 1: IList -------------------------------
   0. keyword  documentary                                        1 instance(s)
   1. keyword  meridian                                           1 instance(s)
   2. entity   actor                                              4 instance(s)
   3. entity   review                                             2 instance(s)
   4. entity   movie                                              1 instance(s)
   5. key      The Burning Summer-56                              1 instance(s)
   6. feature  (movie, year, 1974) DS=1.00 (N=1/1 D=1)            1 instance(s)

  $ extract demo movies.xml "drama movie" -b 5 -n 3 -o movies.html
  wrote movies.html (3 results)

  $ grep -c "class=\"snippet\"" movies.html
  1
