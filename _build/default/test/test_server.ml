(* Tests for the LRU cache, the demo HTTP server (pure handler and socket
   round trip) and the courses dataset. *)

module Lru = Extract_util.Lru
module Demo_server = Extract_server.Demo_server
module Corpus = Extract_snippet.Corpus
module Pipeline = Extract_snippet.Pipeline
module Document = Extract_store.Document

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let contains_substring hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec loop i = i + ln <= lh && (String.sub hay i ln = needle || loop (i + 1)) in
  ln = 0 || loop 0

(* ------------------------------------------------------------------ *)
(* LRU *)

let test_lru_basic () =
  let c = Lru.create ~capacity:2 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  check bool "find a" true (Lru.find c "a" = Some 1);
  check bool "find b" true (Lru.find c "b" = Some 2);
  check int "length" 2 (Lru.length c);
  check int "capacity" 2 (Lru.capacity c)

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:2 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  (* touch a so b is the LRU *)
  ignore (Lru.find c "a");
  Lru.put c "c" 3;
  check bool "b evicted" true (Lru.find c "b" = None);
  check bool "a kept" true (Lru.find c "a" = Some 1);
  check bool "c kept" true (Lru.find c "c" = Some 3)

let test_lru_replace () =
  let c = Lru.create ~capacity:2 in
  Lru.put c "a" 1;
  Lru.put c "a" 9;
  check bool "replaced" true (Lru.find c "a" = Some 9);
  check int "no growth" 1 (Lru.length c)

let test_lru_find_or_add () =
  let c = Lru.create ~capacity:4 in
  let calls = ref 0 in
  let compute () = incr calls; 42 in
  check int "first computes" 42 (Lru.find_or_add c "k" compute);
  check int "second cached" 42 (Lru.find_or_add c "k" compute);
  check int "one computation" 1 !calls;
  let hits, misses = Lru.stats c in
  check int "hits" 1 hits;
  check int "misses" 1 misses

let test_lru_remove_clear () =
  let c = Lru.create ~capacity:4 in
  Lru.put c 1 "x";
  Lru.put c 2 "y";
  Lru.remove c 1;
  check bool "removed" true (Lru.find c 1 = None);
  Lru.clear c;
  check int "cleared" 0 (Lru.length c)

let test_lru_capacity_one () =
  let c = Lru.create ~capacity:1 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  check bool "only latest" true (Lru.find c "a" = None && Lru.find c "b" = Some 2);
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Lru.create: capacity must be positive") (fun () ->
      ignore (Lru.create ~capacity:0))

let test_lru_stress_against_model () =
  (* random ops vs a naive model *)
  let rng = Extract_util.Prng.create 55 in
  let cap = 8 in
  let c = Lru.create ~capacity:cap in
  let model = ref [] in (* (key, value), most recent first *)
  for _ = 1 to 2000 do
    let key = Extract_util.Prng.int rng 20 in
    if Extract_util.Prng.bool rng then begin
      let v = Extract_util.Prng.int rng 1000 in
      Lru.put c key v;
      model := (key, v) :: List.remove_assoc key !model;
      if List.length !model > cap then
        model := List.filteri (fun i _ -> i < cap) !model
    end
    else begin
      let got = Lru.find c key in
      let expected = List.assoc_opt key !model in
      if got <> expected then
        Alcotest.failf "model mismatch on key %d: cache %s, model %s" key
          (match got with Some v -> string_of_int v | None -> "-")
          (match expected with Some v -> string_of_int v | None -> "-");
      (* a hit refreshes recency in both *)
      match expected with
      | Some v -> model := (key, v) :: List.remove_assoc key !model
      | None -> ()
    end
  done

(* ------------------------------------------------------------------ *)
(* Server: URL parsing *)

let test_url_decode () =
  check string "plus" "store texas" (Demo_server.url_decode "store+texas");
  check string "percent" "a&b=c" (Demo_server.url_decode "a%26b%3Dc");
  check string "utf8" "caf\xc3\xa9" (Demo_server.url_decode "caf%C3%A9");
  check string "broken escape kept" "100%" (Demo_server.url_decode "100%");
  check string "broken hex kept" "%zz!" (Demo_server.url_decode "%zz!")

let test_parse_target () =
  let path, params = Demo_server.parse_target "/search?data=retail&q=store+texas&bound=6" in
  check string "path" "/search" path;
  check bool "params" true
    (params = [ "data", "retail"; "q", "store texas"; "bound", "6" ]);
  let path2, params2 = Demo_server.parse_target "/" in
  check string "bare path" "/" path2;
  check int "no params" 0 (List.length params2)

(* ------------------------------------------------------------------ *)
(* Server: handler *)

let server () =
  let db =
    Pipeline.build (Document.of_document (Extract_datagen.Paper_example.document ()))
  in
  Demo_server.create (Corpus.of_list [ "paper", db ])

let test_handle_home () =
  let s = server () in
  let r = Demo_server.handle s "/" in
  check int "200" 200 r.Demo_server.status;
  check bool "lists data set" true (contains_substring r.Demo_server.body "paper")

let test_handle_search () =
  let s = server () in
  let r = Demo_server.handle s "/search?data=paper&q=store+texas&bound=6" in
  check int "200" 200 r.Demo_server.status;
  check bool "html" true (contains_substring r.Demo_server.content_type "text/html");
  check bool "snippet markup" true (contains_substring r.Demo_server.body "class=\"snippet\"");
  check bool "a store name shows" true (contains_substring r.Demo_server.body "Galleria")

let test_handle_search_caches () =
  let s = server () in
  let target = "/search?data=paper&q=store+texas&bound=6" in
  let a = Demo_server.handle s target in
  let b = Demo_server.handle s target in
  check bool "same body" true (a.Demo_server.body = b.Demo_server.body);
  let hits, _ = Demo_server.cache_stats s in
  check int "second was a cache hit" 1 hits

let test_handle_complete () =
  let s = server () in
  let r = Demo_server.handle s "/complete?data=paper&prefix=hou" in
  check int "200" 200 r.Demo_server.status;
  check bool "houston suggested" true (contains_substring r.Demo_server.body "houston")

let test_handle_stats () =
  let s = server () in
  let r = Demo_server.handle s "/stats?data=paper" in
  check int "200" 200 r.Demo_server.status;
  check bool "mentions nodes" true (contains_substring r.Demo_server.body "nodes")

let test_handle_errors () =
  let s = server () in
  check int "missing data" 400 (Demo_server.handle s "/search?q=x").Demo_server.status;
  check int "unknown data" 404
    (Demo_server.handle s "/search?data=nope&q=x").Demo_server.status;
  check int "missing q" 400 (Demo_server.handle s "/search?data=paper").Demo_server.status;
  check int "unknown route" 404 (Demo_server.handle s "/nope").Demo_server.status

(* ------------------------------------------------------------------ *)
(* Server: socket round trip (single-process: connect backlogs before
   accept) *)

let http_get port target =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" target in
  ignore (Unix.write_substring sock req 0 (String.length req));
  sock

let read_all fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    let n = Unix.read fd chunk 0 4096 in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      loop ()
    end
  in
  (try loop () with Unix.Unix_error _ -> ());
  Buffer.contents buf

let test_socket_roundtrip () =
  let s = server () in
  let listening = Demo_server.listen ~port:0 in
  let port = Demo_server.bound_port listening in
  let client = http_get port "/stats?data=paper" in
  Demo_server.serve_once s listening;
  let response = read_all client in
  Unix.close client;
  Unix.close listening;
  check bool "status line" true (contains_substring response "HTTP/1.0 200 OK");
  check bool "content" true (contains_substring response "nodes")

let test_socket_404 () =
  let s = server () in
  let listening = Demo_server.listen ~port:0 in
  let port = Demo_server.bound_port listening in
  let client = http_get port "/missing" in
  Demo_server.serve_once s listening;
  let response = read_all client in
  Unix.close client;
  Unix.close listening;
  check bool "404" true (contains_substring response "HTTP/1.0 404")

(* ------------------------------------------------------------------ *)
(* Courses dataset *)

let test_courses_shape () =
  let doc = Extract_datagen.Courses.generate Extract_datagen.Courses.default in
  let d = Document.of_document doc in
  let kinds = Extract_store.Node_kind.of_document d in
  let guide = Extract_store.Node_kind.dataguide kinds in
  let course = Option.get (Extract_store.Dataguide.find_path guide [ "courses"; "course" ]) in
  check bool "course is an entity" true
    (Extract_store.Node_kind.kind_of_path kinds course = Extract_store.Node_kind.Entity);
  check int "120 courses" 120 (Extract_store.Dataguide.instance_count guide course);
  (* code is unique and total: it is the mined key *)
  let keys = Extract_store.Key_miner.mine kinds in
  let key = Extract_store.Key_miner.key_path keys course in
  check bool "code mined as key" true
    (Option.map (Extract_store.Dataguide.path_tag_name guide) key = Some "code")

let test_courses_validates () =
  let doc = Extract_datagen.Courses.generate Extract_datagen.Courses.default in
  match doc.Extract_xml.Types.dtd with
  | None -> Alcotest.fail "courses should carry a DTD"
  | Some subset ->
    check bool "valid against own DTD" true
      (Extract_xml.Validator.is_valid (Extract_xml.Dtd.parse subset)
         doc.Extract_xml.Types.root)

let test_courses_pipeline () =
  let db =
    Pipeline.build
      (Document.of_document (Extract_datagen.Courses.generate Extract_datagen.Courses.default))
  in
  let results = Pipeline.run ~bound:6 db "course databases" in
  check bool "has results" true (results <> []);
  List.iter
    (fun (r : Pipeline.snippet_result) ->
      check bool "bound" true
        (Extract_snippet.Snippet_tree.edge_count
           r.Pipeline.selection.Extract_snippet.Selector.snippet
        <= 6))
    results

let suites =
  [
    ( "util.lru",
      [
        Alcotest.test_case "basic" `Quick test_lru_basic;
        Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
        Alcotest.test_case "replace" `Quick test_lru_replace;
        Alcotest.test_case "find_or_add" `Quick test_lru_find_or_add;
        Alcotest.test_case "remove/clear" `Quick test_lru_remove_clear;
        Alcotest.test_case "capacity one" `Quick test_lru_capacity_one;
        Alcotest.test_case "model stress" `Quick test_lru_stress_against_model;
      ] );
    ( "server.url",
      [
        Alcotest.test_case "decode" `Quick test_url_decode;
        Alcotest.test_case "parse target" `Quick test_parse_target;
      ] );
    ( "server.handler",
      [
        Alcotest.test_case "home" `Quick test_handle_home;
        Alcotest.test_case "search" `Quick test_handle_search;
        Alcotest.test_case "page cache" `Quick test_handle_search_caches;
        Alcotest.test_case "complete" `Quick test_handle_complete;
        Alcotest.test_case "stats" `Quick test_handle_stats;
        Alcotest.test_case "errors" `Quick test_handle_errors;
      ] );
    ( "server.socket",
      [
        Alcotest.test_case "roundtrip" `Quick test_socket_roundtrip;
        Alcotest.test_case "404" `Quick test_socket_404;
      ] );
    ( "datagen.courses",
      [
        Alcotest.test_case "shape" `Quick test_courses_shape;
        Alcotest.test_case "validates" `Quick test_courses_validates;
        Alcotest.test_case "pipeline" `Quick test_courses_pipeline;
      ] );
  ]
