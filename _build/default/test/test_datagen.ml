(* Unit tests for the dataset generators and their shared machinery —
   including the recursive-schema dataset, the classification corner it
   exercises, and the relaxed/ranked pipeline entry points built on top. *)

module Document = Extract_store.Document
module Dataguide = Extract_store.Dataguide
module Node_kind = Extract_store.Node_kind
module Engine = Extract_search.Engine
module Query = Extract_search.Query
module Datagen = Extract_datagen
module Pipeline = Extract_snippet.Pipeline

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Gen helpers *)

let test_expand_counts () =
  check bool "expansion" true
    (Datagen.Gen.expand_counts [ "a", 2; "b", 1 ] = [| "a"; "a"; "b" |]);
  check bool "empty" true (Datagen.Gen.expand_counts [] = [||]);
  check bool "zero count" true (Datagen.Gen.expand_counts [ "a", 0; "b", 2 ] = [| "b"; "b" |])

let test_deal () =
  let groups = Datagen.Gen.deal [| 1; 2; 3; 4; 5 |] 2 in
  check int "two groups" 2 (Array.length groups);
  check bool "round robin" true (groups.(0) = [| 1; 3; 5 |] && groups.(1) = [| 2; 4 |]);
  Alcotest.check_raises "k=0" (Invalid_argument "Gen.deal: k must be positive") (fun () ->
      ignore (Datagen.Gen.deal [| 1 |] 0))

let test_pick_zipf_mismatch () =
  let rng = Extract_util.Prng.create 1 in
  let z = Extract_util.Zipf.create ~n:3 ~skew:1.0 in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Gen.pick_zipf: distribution size mismatch") (fun () ->
      ignore (Datagen.Gen.pick_zipf rng z [| "a" |]))

let test_gen_document_text_root () =
  Alcotest.check_raises "text root"
    (Invalid_argument "Gen.document: the root must be an element") (fun () ->
      ignore (Datagen.Gen.document (Extract_xml.Types.text "x")))

(* ------------------------------------------------------------------ *)
(* Paper example counts *)

let test_paper_example_counts () =
  let doc = Document.of_document (Datagen.Paper_example.document ()) in
  let guide = Dataguide.build doc in
  let count path = Dataguide.instance_count guide (Option.get (Dataguide.find_path guide path)) in
  check int "stores (10 + 2 others)" 12 (count [ "retailers"; "retailer"; "store" ]);
  check int "retailers" 3 (count [ "retailers"; "retailer" ]);
  check int "clothes"
    (Datagen.Paper_example.clothes_count + 4)
    (count [ "retailers"; "retailer"; "store"; "merchandises"; "clothes" ])

let test_paper_example_seedless_determinism () =
  let a = Extract_xml.Printer.document_to_string (Datagen.Paper_example.document ()) in
  let b = Extract_xml.Printer.document_to_string (Datagen.Paper_example.document ()) in
  check bool "byte identical" true (String.equal a b)

(* ------------------------------------------------------------------ *)
(* Retail configuration effects *)

let test_retail_config_shapes () =
  let gen retailers stores clothes =
    Document.of_document
      (Datagen.Retail.generate
         {
           Datagen.Retail.default with
           Datagen.Retail.retailers;
           stores_per_retailer = stores;
           clothes_per_store = clothes;
         })
  in
  let small = gen 1 2 2 in
  let big = gen 2 4 4 in
  check bool "bigger config, bigger doc" true
    (Document.node_count big > 2 * Document.node_count small);
  let guide = Dataguide.build small in
  check int "one retailer" 1
    (Dataguide.instance_count guide
       (Option.get (Dataguide.find_path guide [ "retailers"; "retailer" ])));
  check int "two stores" 2
    (Dataguide.instance_count guide
       (Option.get (Dataguide.find_path guide [ "retailers"; "retailer"; "store" ])))

let test_retail_seed_changes_content () =
  let s1 = Extract_xml.Printer.document_to_string (Datagen.Retail.generate Datagen.Retail.default) in
  let s2 =
    Extract_xml.Printer.document_to_string
      (Datagen.Retail.generate { Datagen.Retail.default with Datagen.Retail.seed = 43 })
  in
  check bool "different seeds differ" true (not (String.equal s1 s2))

(* ------------------------------------------------------------------ *)
(* Movies / Bib shapes *)

let test_movies_unique_titles () =
  let doc = Document.of_document (Datagen.Movies.sized 40) in
  let kinds = Node_kind.of_document doc in
  let keys = Extract_store.Key_miner.mine kinds in
  let guide = Node_kind.dataguide kinds in
  let movie = Option.get (Dataguide.find_path guide [ "movies"; "movie" ]) in
  check bool "title is the key" true
    (Option.map (Dataguide.path_tag_name guide) (Extract_store.Key_miner.key_path keys movie)
    = Some "title")

let test_bib_two_entity_tags_under_root () =
  let doc = Document.of_document (Datagen.Bib.sized 40) in
  let kinds = Node_kind.of_document doc in
  let guide = Node_kind.dataguide kinds in
  let article = Dataguide.find_path guide [ "bib"; "article" ] in
  let inproc = Dataguide.find_path guide [ "bib"; "inproceedings" ] in
  check bool "both publication kinds occur" true (article <> None && inproc <> None);
  check bool "author repeats -> entity" true
    (match Dataguide.find_path guide [ "bib"; "article"; "author" ] with
    | Some p -> Node_kind.kind_of_path kinds p = Node_kind.Entity
    | None -> false)

(* ------------------------------------------------------------------ *)
(* Recursive dataset *)

let nested_doc = lazy (Document.of_document (Datagen.Nested.generate Datagen.Nested.default))

let test_nested_recursive_paths () =
  let doc = Lazy.force nested_doc in
  let guide = Dataguide.build doc in
  (* section under section under section: distinct path per depth *)
  let p1 = Dataguide.find_path guide [ "report"; "section" ] in
  let p2 = Dataguide.find_path guide [ "report"; "section"; "section" ] in
  check bool "two recursion levels exist" true (p1 <> None && p2 <> None);
  check bool "distinct paths" true (p1 <> p2);
  check string "same tag" "section" (Dataguide.path_tag_name guide (Option.get p2))

let test_nested_entities_under_entities () =
  let doc = Lazy.force nested_doc in
  let kinds = Node_kind.of_document doc in
  let guide = Node_kind.dataguide kinds in
  List.iter
    (fun path ->
      match Dataguide.find_path guide path with
      | Some p ->
        check bool
          (Printf.sprintf "section depth %d is an entity" (List.length path - 1))
          true
          (Node_kind.kind_of_path kinds p = Node_kind.Entity)
      | None -> ())
    [ [ "report"; "section" ]; [ "report"; "section"; "section" ];
      [ "report"; "section"; "section"; "section" ] ]

let test_nested_validates () =
  let doc = Datagen.Nested.generate Datagen.Nested.default in
  match doc.Extract_xml.Types.dtd with
  | None -> Alcotest.fail "nested should carry a DTD"
  | Some subset ->
    check bool "valid" true
      (Extract_xml.Validator.is_valid (Extract_xml.Dtd.parse subset) doc.Extract_xml.Types.root)

let test_nested_search_returns_innermost () =
  let db = Pipeline.build (Lazy.force nested_doc) in
  let doc = Pipeline.document db in
  (* every heading is unique "word id"; search for one deep heading *)
  let guide = Pipeline.dataguide db in
  let deep_heading =
    Dataguide.paths guide
    |> List.filter (fun p -> Dataguide.path_tag_name guide p = "heading")
    |> List.concat_map (Dataguide.instances guide)
    |> List.filter (fun n -> Document.depth doc n >= 4)
  in
  match deep_heading with
  | [] -> Alcotest.fail "expected deep headings"
  | h :: _ ->
    let text = Extract_store.Tokenizer.tokens (Document.immediate_text doc h) in
    let q = String.concat " " text in
    let results = Pipeline.run ~bound:4 db q in
    check bool "deep section found" true (results <> []);
    let r = (List.hd results).Pipeline.result in
    check string "rooted at a section" "section"
      (Document.tag_name doc (Extract_search.Result_tree.root r))

let test_nested_sized () =
  let small = Document.of_document (Datagen.Nested.sized 20) in
  let large = Document.of_document (Datagen.Nested.sized 200) in
  check bool "sized scales" true (Document.node_count large > Document.node_count small)

(* ------------------------------------------------------------------ *)
(* Relaxed search *)

let test_relaxed_no_drop_needed () =
  let db = Pipeline.of_xml_string "<r><a>x y</a></r>" in
  let results, dropped =
    Engine.run_relaxed (Pipeline.index db) (Pipeline.kinds db) (Query.of_string "x y")
  in
  check bool "results" true (results <> []);
  check bool "nothing dropped" true (dropped = [])

let test_relaxed_drops_rarest () =
  let db = Pipeline.of_xml_string "<r><a>common common2</a><a>common</a></r>" in
  (* "zzz" has df 0: dropped first *)
  let results, dropped =
    Engine.run_relaxed (Pipeline.index db) (Pipeline.kinds db)
      (Query.of_string "common zzz")
  in
  check bool "results after drop" true (results <> []);
  check bool "dropped zzz" true (dropped = [ "zzz" ])

let test_relaxed_gives_up () =
  let db = Pipeline.of_xml_string "<r><a>x</a></r>" in
  let results, dropped =
    Engine.run_relaxed (Pipeline.index db) (Pipeline.kinds db)
      (Query.of_string "zz1 zz2 zz3")
  in
  check bool "no results" true (results = []);
  check int "dropped all but one" 2 (List.length dropped)

(* ------------------------------------------------------------------ *)
(* Ranked pipeline *)

let test_run_ranked_sorted () =
  let db =
    Pipeline.build
      (Document.of_document (Datagen.Retail.generate Datagen.Retail.default))
  in
  let ranked = Pipeline.run_ranked ~bound:6 db "jeans store" in
  check bool "has results" true (ranked <> []);
  let scores = List.map fst ranked in
  check bool "descending" true (List.sort (fun a b -> compare b a) scores = scores)

let test_run_ranked_limit_keeps_best () =
  let db =
    Pipeline.build
      (Document.of_document (Datagen.Retail.generate Datagen.Retail.default))
  in
  let all = Pipeline.run_ranked db "jeans store" in
  let top = Pipeline.run_ranked ~limit:3 db "jeans store" in
  check int "limited" 3 (List.length top);
  (* the limited list is a prefix of the full ranking *)
  check bool "prefix of full ranking" true
    (List.map fst top = List.filteri (fun i _ -> i < 3) (List.map fst all))

let suites =
  [
    ( "datagen.gen",
      [
        Alcotest.test_case "expand_counts" `Quick test_expand_counts;
        Alcotest.test_case "deal" `Quick test_deal;
        Alcotest.test_case "pick_zipf mismatch" `Quick test_pick_zipf_mismatch;
        Alcotest.test_case "text root" `Quick test_gen_document_text_root;
      ] );
    ( "datagen.paper_example",
      [
        Alcotest.test_case "counts" `Quick test_paper_example_counts;
        Alcotest.test_case "determinism" `Quick test_paper_example_seedless_determinism;
      ] );
    ( "datagen.retail",
      [
        Alcotest.test_case "config shapes" `Quick test_retail_config_shapes;
        Alcotest.test_case "seed sensitivity" `Quick test_retail_seed_changes_content;
      ] );
    ( "datagen.movies_bib",
      [
        Alcotest.test_case "movie titles unique" `Quick test_movies_unique_titles;
        Alcotest.test_case "bib heterogeneous" `Quick test_bib_two_entity_tags_under_root;
      ] );
    ( "datagen.nested",
      [
        Alcotest.test_case "recursive paths" `Quick test_nested_recursive_paths;
        Alcotest.test_case "entities under entities" `Quick test_nested_entities_under_entities;
        Alcotest.test_case "validates" `Quick test_nested_validates;
        Alcotest.test_case "deep search" `Quick test_nested_search_returns_innermost;
        Alcotest.test_case "sized" `Quick test_nested_sized;
      ] );
    ( "search.relaxed",
      [
        Alcotest.test_case "no drop" `Quick test_relaxed_no_drop_needed;
        Alcotest.test_case "drops rarest" `Quick test_relaxed_drops_rarest;
        Alcotest.test_case "gives up" `Quick test_relaxed_gives_up;
      ] );
    ( "snippet.ranked",
      [
        Alcotest.test_case "sorted" `Quick test_run_ranked_sorted;
        Alcotest.test_case "limit keeps best" `Quick test_run_ranked_limit_keeps_best;
      ] );
  ]
