test/test_search.ml: Alcotest Array Elca Engine Extract_search Extract_store Extract_xml Lca List Printf Query Result_tree Slca String Xseek
