test/test_store.ml: Alcotest Array Dataguide Dewey Doc_stats Document Extract_store Inverted_index Key_miner List Node_kind Option Printf Schema_infer Tokenizer
