test/test_properties.ml: Array Extract_datagen Extract_search Extract_snippet Extract_store Extract_xml Fun Gen Hashtbl List Option Printf QCheck QCheck_alcotest String Test
