test/test_integration.ml: Alcotest Extract_datagen Extract_search Extract_snippet Extract_store Extract_xml Filename Lazy List Printf String Sys
