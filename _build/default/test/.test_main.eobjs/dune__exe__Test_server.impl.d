test/test_server.ml: Alcotest Buffer Bytes Extract_datagen Extract_server Extract_snippet Extract_store Extract_util Extract_xml List Option Printf String Unix
