test/test_datagen.ml: Alcotest Array Extract_datagen Extract_search Extract_snippet Extract_store Extract_util Extract_xml Lazy List Option Printf String
