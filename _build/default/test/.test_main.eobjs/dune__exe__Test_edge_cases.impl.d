test/test_edge_cases.ml: Alcotest Extract_datagen Extract_search Extract_snippet Extract_store List Pipeline Printf Selector Snippet_tree String
