test/test_validation.ml: Alcotest Array Corpus Extract_datagen Extract_snippet Extract_store Extract_xml Format List Option Pipeline Printf String
