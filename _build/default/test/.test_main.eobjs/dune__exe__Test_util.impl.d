test/test_util.ml: Alcotest Array Arraylist Extract_util Fun Interner List Pqueue Pretty Prng Stats String Table Zipf
