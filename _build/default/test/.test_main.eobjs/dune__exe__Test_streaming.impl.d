test/test_streaming.ml: Alcotest Extract_datagen Extract_snippet Extract_store Extract_xml List Printf
