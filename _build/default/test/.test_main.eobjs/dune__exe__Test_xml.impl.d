test/test_xml.ml: Alcotest Buffer Content_model Dtd Error Extract_xml List Option Parser Printer Printf String Types
