test/test_paper_example.ml: Alcotest Extract_datagen Extract_search Extract_snippet Extract_store Feature Ilist Lazy List Option Pipeline Printf Result_key Return_entity Selector Snippet_tree
