(* Unit tests for the extract.store substrate: document arena, Dewey
   labels, tokenizer, inverted index, dataguide, schema inference, node
   classification and key mining. *)

open Extract_store

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let load = Document.load_string

(* A small, fully hand-checkable document:
   ids (pre-order):   0=catalog 1=vendor 2="acme" 3=book 4=title 5="ocaml"
                      6=tag 7="lang" 8=tag 9="pl" 10=book 11=title
                      12="databases" 13=tag 14="db" *)
let small =
  "<catalog><vendor>acme</vendor>\
   <book><title>ocaml</title><tag>lang</tag><tag>pl</tag></book>\
   <book><title>databases</title><tag>db</tag></book></catalog>"

let doc () = load small

(* ------------------------------------------------------------------ *)
(* Document arena *)

let test_doc_counts () =
  let d = doc () in
  check int "nodes" 15 (Document.node_count d);
  check int "elements" 9 (Document.element_count d)

let test_doc_root () =
  let d = doc () in
  check int "root id" 0 (Document.root d);
  check string "root tag" "catalog" (Document.tag_name d 0);
  check bool "root parent" true (Document.parent d 0 = None);
  check int "root depth" 0 (Document.depth d 0)

let test_doc_tags_and_text () =
  let d = doc () in
  check string "vendor" "vendor" (Document.tag_name d 1);
  check string "vendor text" "acme" (Document.text d 2);
  check bool "text node kind" true (Document.kind d 2 = Document.Text);
  check bool "element kind" true (Document.kind d 1 = Document.Element)

let test_doc_tag_errors () =
  let d = doc () in
  Alcotest.check_raises "tag of text"
    (Invalid_argument "Document.tag_id: node 2 is a text node") (fun () ->
      ignore (Document.tag_id d 2));
  Alcotest.check_raises "text of element"
    (Invalid_argument "Document.text: node 1 is an element") (fun () ->
      ignore (Document.text d 1))

let test_doc_structure () =
  let d = doc () in
  check bool "children of root" true (Document.children d 0 = [ 1; 3; 10 ]);
  check bool "children of book1" true (Document.children d 3 = [ 4; 6; 8 ]);
  check bool "first child" true (Document.first_child d 3 = Some 4);
  check bool "next sibling" true (Document.next_sibling d 4 = Some 6);
  check bool "last sibling" true (Document.next_sibling d 8 = None);
  check bool "leaf first child" true (Document.first_child d 2 = None)

let test_doc_subtree () =
  let d = doc () in
  check int "subtree of book1" 7 (Document.subtree_size d 3);
  check int "subtree last" 9 (Document.subtree_last d 3);
  check int "whole document" 15 (Document.subtree_size d 0)

let test_doc_depth () =
  let d = doc () in
  check int "book depth" 1 (Document.depth d 3);
  check int "title depth" 2 (Document.depth d 4);
  check int "text depth" 3 (Document.depth d 5)

let test_doc_ancestry () =
  let d = doc () in
  check bool "root ancestor of all" true (Document.is_ancestor d ~anc:0 ~desc:14);
  check bool "book1 ancestor of its tag" true (Document.is_ancestor d ~anc:3 ~desc:9);
  check bool "book1 not ancestor of book2" false (Document.is_ancestor d ~anc:3 ~desc:10);
  check bool "not own ancestor" false (Document.is_ancestor d ~anc:3 ~desc:3);
  check bool "ancestor-or-self" true (Document.is_ancestor_or_self d ~anc:3 ~desc:3)

let test_doc_lca () =
  let d = doc () in
  check int "lca within book" 3 (Document.lca d 5 9);
  check int "lca across books" 0 (Document.lca d 5 12);
  check int "lca with self" 4 (Document.lca d 4 4);
  check int "lca ancestor/descendant" 3 (Document.lca d 3 9)

let test_doc_ancestors () =
  let d = doc () in
  check bool "ancestors nearest first" true (Document.ancestors d 5 = [ 4; 3; 0 ]);
  check bool "root has none" true (Document.ancestors d 0 = [])

let test_doc_ancestor_at_depth () =
  let d = doc () in
  check int "depth 0" 0 (Document.ancestor_at_depth d 5 0);
  check int "depth 1" 3 (Document.ancestor_at_depth d 5 1);
  check int "depth 3 = self" 5 (Document.ancestor_at_depth d 5 3)

let test_doc_text_access () =
  let d = doc () in
  check string "immediate" "ocaml" (Document.immediate_text d 4);
  check string "subtree text" "ocaml lang pl" (Document.subtree_text d 3);
  check bool "only-text children" true (Document.has_only_text_children d 4);
  check bool "book has elements" false (Document.has_only_text_children d 3);
  check bool "text node no children" false (Document.has_only_text_children d 5)

let test_doc_xml_attributes_become_children () =
  let d = load {|<r><item id="i1" color="red">x</item></r>|} in
  (* r, item, id, "i1", color, "red", "x" *)
  check int "nodes" 7 (Document.node_count d);
  check string "attr child tag" "id" (Document.tag_name d 2);
  check string "attr value" "i1" (Document.immediate_text d 2)

let test_doc_roundtrip_to_xml () =
  let d = doc () in
  let xml = Document.to_xml d 0 in
  let d2 = Document.of_xml xml in
  check int "same node count" (Document.node_count d) (Document.node_count d2);
  check bool "same structure" true (Document.to_xml d2 0 = xml)

let test_doc_fold_subtree () =
  let d = doc () in
  let count = Document.fold_subtree d 3 (fun acc _ -> acc + 1) 0 in
  check int "fold over subtree" 7 count

let test_doc_dtd_carried () =
  let d = load "<!DOCTYPE r [<!ELEMENT r (a*)>]><r><a/></r>" in
  check bool "dtd present" true (Document.dtd d <> None)

(* ------------------------------------------------------------------ *)
(* Dewey labels *)

let test_dewey_labels () =
  let d = doc () in
  let dw = Dewey.of_document d in
  check bool "root label" true (Dewey.label dw 0 = [||]);
  check bool "vendor" true (Dewey.label dw 1 = [| 0 |]);
  check bool "book2" true (Dewey.label dw 10 = [| 2 |]);
  check bool "book1/tag2" true (Dewey.label dw 8 = [| 1; 2 |])

let test_dewey_order_is_preorder () =
  let d = doc () in
  let dw = Dewey.of_document d in
  for a = 0 to Document.node_count d - 1 do
    for b = 0 to Document.node_count d - 1 do
      let by_label = Dewey.compare_nodes dw a b in
      if compare a b <> 0 && by_label <> 0 && compare a b * by_label < 0 then
        Alcotest.fail "label order disagrees with pre-order"
    done
  done

let test_dewey_lca_agrees () =
  let d = doc () in
  let dw = Dewey.of_document d in
  for a = 0 to Document.node_count d - 1 do
    for b = 0 to Document.node_count d - 1 do
      check int
        (Printf.sprintf "lca %d %d" a b)
        (Document.lca d a b) (Dewey.lca dw a b)
    done
  done

(* ------------------------------------------------------------------ *)
(* Tokenizer *)

let test_tokenizer_basic () =
  check bool "split" true (Tokenizer.tokens "Brook Brothers" = [ "brook"; "brothers" ]);
  check bool "punctuation" true (Tokenizer.tokens "a,b;c-d" = [ "a"; "b"; "c"; "d" ]);
  check bool "digits kept" true (Tokenizer.tokens "year 1999!" = [ "year"; "1999" ]);
  check bool "empty" true (Tokenizer.tokens "  ,. " = []);
  check bool "duplicates kept" true (Tokenizer.tokens "a a" = [ "a"; "a" ])

let test_tokenizer_case () =
  check bool "lowercased" true (Tokenizer.tokens "TeXaS" = [ "texas" ])

let test_tokenizer_normalize () =
  check string "single" "texas" (Tokenizer.normalize "Texas");
  check string "concat" "brookbrothers" (Tokenizer.normalize "Brook Brothers");
  check string "none" "" (Tokenizer.normalize "---")

let test_tokenizer_utf8 () =
  check bool "utf8 word survives" true (Tokenizer.tokens "caf\xc3\xa9" = [ "caf\xc3\xa9" ])

(* ------------------------------------------------------------------ *)
(* Inverted index *)

let test_index_value_match () =
  let d = doc () in
  let idx = Inverted_index.build d in
  check bool "ocaml -> title node" true (Inverted_index.matches idx "ocaml" = [ 4 ]);
  check bool "acme -> vendor" true (Inverted_index.matches idx "acme" = [ 1 ])

let test_index_tag_match () =
  let d = doc () in
  let idx = Inverted_index.build d in
  check bool "book tag" true (Inverted_index.matches idx "book" = [ 3; 10 ]);
  check bool "tag elements" true (Inverted_index.matches idx "tag" = [ 6; 8; 13 ])

let test_index_case_insensitive () =
  let d = doc () in
  let idx = Inverted_index.build d in
  check bool "OCaml = ocaml" true (Inverted_index.matches idx "OCaml" = [ 4 ])

let test_index_missing () =
  let d = doc () in
  let idx = Inverted_index.build d in
  check bool "absent keyword" true (Inverted_index.matches idx "zzz" = []);
  check bool "contains" false (Inverted_index.contains idx "zzz");
  check bool "contains present" true (Inverted_index.contains idx "db")

let test_index_postings_sorted_unique () =
  let d = load "<r><a>x x</a><a>x</a></r>" in
  let idx = Inverted_index.build d in
  let l = Inverted_index.lookup idx "x" in
  check int "dedup within node" 2 (Array.length l);
  check bool "sorted" true (l.(0) < l.(1))

let test_index_match_kind () =
  let d = load "<r><city>city</city><name>Houston</name></r>" in
  let idx = Inverted_index.build d in
  check bool "tag+value" true
    (Inverted_index.match_kind idx ~keyword:"city" ~node:1 = Some `Both);
  check bool "value only" true
    (Inverted_index.match_kind idx ~keyword:"houston" ~node:3 = Some `Value);
  check bool "tag only" true
    (Inverted_index.match_kind idx ~keyword:"name" ~node:3 = Some `Tag);
  check bool "non-match" true (Inverted_index.match_kind idx ~keyword:"houston" ~node:1 = None)

let test_index_sizes () =
  let d = doc () in
  let idx = Inverted_index.build d in
  check bool "token count positive" true (Inverted_index.token_count idx > 0);
  check bool "postings >= tokens" true
    (Inverted_index.postings_size idx >= Inverted_index.token_count idx);
  check int "vocabulary size" (Inverted_index.token_count idx)
    (List.length (Inverted_index.vocabulary idx))

(* ------------------------------------------------------------------ *)
(* Dataguide *)

let test_guide_paths () =
  let d = doc () in
  let g = Dataguide.build d in
  (* /catalog /catalog/vendor /catalog/book /catalog/book/title /catalog/book/tag *)
  check int "path count" 5 (Dataguide.path_count g);
  check string "root path" "/catalog" (Dataguide.path_string g 0)

let test_guide_path_of_node () =
  let d = doc () in
  let g = Dataguide.build d in
  check bool "both books same path" true
    (Dataguide.path_of_node g 3 = Dataguide.path_of_node g 10);
  check bool "title and tag differ" true
    (Dataguide.path_of_node g 4 <> Dataguide.path_of_node g 6)

let test_guide_instance_counts () =
  let d = doc () in
  let g = Dataguide.build d in
  let book = Option.get (Dataguide.find_path g [ "catalog"; "book" ]) in
  check int "two books" 2 (Dataguide.instance_count g book);
  let tag = Option.get (Dataguide.find_path g [ "catalog"; "book"; "tag" ]) in
  check int "three tags" 3 (Dataguide.instance_count g tag);
  check bool "instances in doc order" true (Dataguide.instances g tag = [ 6; 8; 13 ])

let test_guide_find_path_misses () =
  let d = doc () in
  let g = Dataguide.build d in
  check bool "wrong root" true (Dataguide.find_path g [ "nope" ] = None);
  check bool "wrong leaf" true (Dataguide.find_path g [ "catalog"; "nope" ] = None);
  check bool "empty" true (Dataguide.find_path g [] = None)

let test_guide_parent_and_depth () =
  let d = doc () in
  let g = Dataguide.build d in
  let title = Option.get (Dataguide.find_path g [ "catalog"; "book"; "title" ]) in
  let book = Option.get (Dataguide.find_path g [ "catalog"; "book" ]) in
  check bool "parent path" true (Dataguide.parent_path g title = Some book);
  check bool "root parent" true (Dataguide.parent_path g 0 = None);
  check int "depth" 2 (Dataguide.path_depth g title);
  check string "tag name" "title" (Dataguide.path_tag_name g title)

let test_guide_text_node_error () =
  let d = doc () in
  let g = Dataguide.build d in
  Alcotest.check_raises "text node"
    (Invalid_argument "Dataguide.path_of_node: node 2 is a text node") (fun () ->
      ignore (Dataguide.path_of_node g 2))

(* ------------------------------------------------------------------ *)
(* Schema inference *)

let test_schema_star_from_data () =
  let d = doc () in
  let g = Dataguide.build d in
  let s = Schema_infer.infer g in
  let book = Option.get (Dataguide.find_path g [ "catalog"; "book" ]) in
  let tag = Option.get (Dataguide.find_path g [ "catalog"; "book"; "tag" ]) in
  let title = Option.get (Dataguide.find_path g [ "catalog"; "book"; "title" ]) in
  check bool "book starred (2 under catalog)" true (Schema_infer.is_starred s book);
  check bool "tag starred (2 under book1)" true (Schema_infer.is_starred s tag);
  check bool "title not starred" false (Schema_infer.is_starred s title);
  check bool "root never starred" false (Schema_infer.is_starred s 0);
  check bool "data source" true (Schema_infer.source s book = `Data)

let test_schema_dtd_overrides_data () =
  (* Data shows a single <a>, but the DTD says a*. *)
  let d = load "<!DOCTYPE r [<!ELEMENT r (a*)> <!ELEMENT a (#PCDATA)>]><r><a>x</a></r>" in
  let g = Dataguide.build d in
  let s = Schema_infer.infer g in
  let a = Option.get (Dataguide.find_path g [ "r"; "a" ]) in
  check bool "a starred by dtd" true (Schema_infer.is_starred s a);
  check bool "dtd source" true (Schema_infer.source s a = `Dtd)

let test_schema_dtd_negative_override () =
  (* Data would not star <b> (one instance); DTD declares it plainly. *)
  let d = load "<!DOCTYPE r [<!ELEMENT r (b)> <!ELEMENT b (#PCDATA)>]><r><b>x</b></r>" in
  let g = Dataguide.build d in
  let s = Schema_infer.infer g in
  let b = Option.get (Dataguide.find_path g [ "r"; "b" ]) in
  check bool "b not starred" false (Schema_infer.is_starred s b)

let test_schema_starred_paths_list () =
  let d = doc () in
  let g = Dataguide.build d in
  let s = Schema_infer.infer g in
  check int "two starred paths" 2 (List.length (Schema_infer.starred_paths s))

(* ------------------------------------------------------------------ *)
(* Node classification *)

let classify src =
  let d = load src in
  Node_kind.of_document d

let test_kinds_small () =
  let k = classify small in
  let g = Node_kind.dataguide k in
  let path names = Option.get (Dataguide.find_path g names) in
  check bool "book entity" true
    (Node_kind.kind_of_path k (path [ "catalog"; "book" ]) = Node_kind.Entity);
  check bool "tag entity" true
    (Node_kind.kind_of_path k (path [ "catalog"; "book"; "tag" ]) = Node_kind.Entity);
  check bool "title attribute" true
    (Node_kind.kind_of_path k (path [ "catalog"; "book"; "title" ]) = Node_kind.Attribute);
  check bool "vendor attribute" true
    (Node_kind.kind_of_path k (path [ "catalog"; "vendor" ]) = Node_kind.Attribute);
  check bool "root connection" true (Node_kind.kind_of_path k 0 = Node_kind.Connection)

let test_kinds_connection () =
  let k = classify "<r><wrap><x>1</x></wrap><wrap2><x2>2</x2></wrap2></r>" in
  let g = Node_kind.dataguide k in
  let wrap = Option.get (Dataguide.find_path g [ "r"; "wrap" ]) in
  check bool "wrap is connection" true (Node_kind.kind_of_path k wrap = Node_kind.Connection)

let test_kinds_node_level () =
  let k = classify small in
  check bool "is_entity node" true (Node_kind.is_entity k 3);
  check bool "is_attribute node" true (Node_kind.is_attribute k 4);
  check bool "not entity" false (Node_kind.is_entity k 4)

let test_kinds_nearest_entity () =
  let k = classify small in
  check bool "title -> book" true (Node_kind.nearest_entity_ancestor k 4 = Some 3);
  check bool "book -> none (catalog is connection)" true
    (Node_kind.nearest_entity_ancestor k 3 = None)

let test_kinds_attribute_value () =
  let k = classify "<r><a><v>  padded  </v></a><a><v>x</v></a></r>" in
  check string "trimmed" "padded" (Node_kind.attribute_value k 2)

let test_kinds_entity_of_attribute () =
  let k = classify small in
  let g = Node_kind.dataguide k in
  let title = Option.get (Dataguide.find_path g [ "catalog"; "book"; "title" ]) in
  let book = Option.get (Dataguide.find_path g [ "catalog"; "book" ]) in
  check bool "title's entity is book" true (Node_kind.entity_of_attribute k title = Some book);
  check bool "entity arg rejected" true (Node_kind.entity_of_attribute k book = None)

let test_kinds_lists () =
  let k = classify small in
  check int "entity paths" 2 (List.length (Node_kind.entity_paths k));
  check int "attribute paths" 2 (List.length (Node_kind.attribute_paths k))

let test_kinds_empty_element () =
  (* childless elements: never attributes (no text value) *)
  let k = classify "<r><e/><e/><solo/></r>" in
  let g = Node_kind.dataguide k in
  let solo = Option.get (Dataguide.find_path g [ "r"; "solo" ]) in
  let e = Option.get (Dataguide.find_path g [ "r"; "e" ]) in
  check bool "repeated childless is entity" true (Node_kind.kind_of_path k e = Node_kind.Entity);
  check bool "solo childless is attribute or connection" true
    (Node_kind.kind_of_path k solo <> Node_kind.Entity)

(* ------------------------------------------------------------------ *)
(* Key mining *)

let keyed_doc =
  "<shop>\
   <item><sku>A1</sku><color>red</color></item>\
   <item><sku>A2</sku><color>red</color></item>\
   <item><sku>A3</sku><color>blue</color></item>\
   </shop>"

let test_keys_unique_attribute () =
  let k = classify keyed_doc in
  let keys = Key_miner.mine k in
  let g = Node_kind.dataguide k in
  let item = Option.get (Dataguide.find_path g [ "shop"; "item" ]) in
  let sku = Option.get (Dataguide.find_path g [ "shop"; "item"; "sku" ]) in
  check bool "sku is the key" true (Key_miner.key_path keys item = Some sku);
  check bool "strict" true (Key_miner.strict_key_path keys item = Some sku)

let test_keys_instance_value () =
  let k = classify keyed_doc in
  let keys = Key_miner.mine k in
  (* first item instance is node 1 *)
  match Key_miner.key_of_instance keys 1 with
  | Some (_, v) -> check string "key value" "A1" v
  | None -> Alcotest.fail "expected a key"

let test_keys_no_unique () =
  let k = classify "<r><p><c>x</c></p><p><c>x</c></p><p><c>x</c></p></r>" in
  let keys = Key_miner.mine k in
  let g = Node_kind.dataguide k in
  let p = Option.get (Dataguide.find_path g [ "r"; "p" ]) in
  check bool "no strict key" true (Key_miner.strict_key_path keys p = None)

let test_keys_prefer_conventional_names () =
  (* Both "code" and "name" are unique; "name" is in the preferred list. *)
  let src =
    "<r>\
     <e><code>c1</code><name>n1</name></e>\
     <e><code>c2</code><name>n2</name></e>\
     </r>"
  in
  let k = classify src in
  let keys = Key_miner.mine k in
  let g = Node_kind.dataguide k in
  let e = Option.get (Dataguide.find_path g [ "r"; "e" ]) in
  let name = Option.get (Dataguide.find_path g [ "r"; "e"; "name" ]) in
  check bool "name preferred" true (Key_miner.key_path keys e = Some name)

let test_keys_coverage_required () =
  (* "id" is unique but present on only 1 of 3 instances; "label" is unique
     and total: label must win. *)
  let src =
    "<r>\
     <e><id>only</id><label>l1</label></e>\
     <e><label>l2</label></e>\
     <e><label>l3</label></e>\
     </r>"
  in
  let k = classify src in
  let keys = Key_miner.mine k in
  let g = Node_kind.dataguide k in
  let e = Option.get (Dataguide.find_path g [ "r"; "e" ]) in
  let label = Option.get (Dataguide.find_path g [ "r"; "e"; "label" ]) in
  check bool "total unique attribute wins" true (Key_miner.key_path keys e = Some label)

let test_keys_candidates_ranked () =
  let k = classify keyed_doc in
  let keys = Key_miner.mine k in
  let g = Node_kind.dataguide k in
  let item = Option.get (Dataguide.find_path g [ "shop"; "item" ]) in
  match Key_miner.candidates keys item with
  | best :: rest ->
    check bool "best is strict" true best.Key_miner.strict;
    List.iter
      (fun c -> check bool "rest no better" true (c.Key_miner.uniqueness <= best.Key_miner.uniqueness))
      rest
  | [] -> Alcotest.fail "expected candidates"

let test_keys_duplicated_attr_instances () =
  (* an entity instance with TWO sku children is not covered by sku *)
  let src =
    "<shop><item><sku>A1</sku><sku>A1b</sku></item><item><sku>A2</sku></item></shop>"
  in
  let k = classify src in
  let keys = Key_miner.mine k in
  let g = Node_kind.dataguide k in
  let item = Option.get (Dataguide.find_path g [ "shop"; "item" ]) in
  check bool "sku not strict (double on one instance)" true
    (Key_miner.strict_key_path keys item = None)

(* ------------------------------------------------------------------ *)
(* Doc stats *)

let test_stats_small () =
  let k = classify small in
  let s = Doc_stats.compute k in
  check int "nodes" 15 s.Doc_stats.nodes;
  check int "elements" 9 s.Doc_stats.elements;
  check int "text" 6 s.Doc_stats.text_nodes;
  check int "tags" 5 s.Doc_stats.distinct_tags;
  check int "paths" 5 s.Doc_stats.distinct_paths;
  check int "depth" 3 s.Doc_stats.max_depth;
  check int "entity paths" 2 s.Doc_stats.entity_paths;
  check int "entity instances" 5 s.Doc_stats.entity_instances

let test_stats_row_matches_header () =
  let k = classify small in
  let s = Doc_stats.compute k in
  check int "row width" (List.length Doc_stats.header) (List.length (Doc_stats.to_row s))

let suites =
  [
    ( "store.document",
      [
        Alcotest.test_case "counts" `Quick test_doc_counts;
        Alcotest.test_case "root" `Quick test_doc_root;
        Alcotest.test_case "tags and text" `Quick test_doc_tags_and_text;
        Alcotest.test_case "kind errors" `Quick test_doc_tag_errors;
        Alcotest.test_case "structure" `Quick test_doc_structure;
        Alcotest.test_case "subtree" `Quick test_doc_subtree;
        Alcotest.test_case "depth" `Quick test_doc_depth;
        Alcotest.test_case "ancestry" `Quick test_doc_ancestry;
        Alcotest.test_case "lca" `Quick test_doc_lca;
        Alcotest.test_case "ancestors" `Quick test_doc_ancestors;
        Alcotest.test_case "ancestor at depth" `Quick test_doc_ancestor_at_depth;
        Alcotest.test_case "text access" `Quick test_doc_text_access;
        Alcotest.test_case "xml attributes" `Quick test_doc_xml_attributes_become_children;
        Alcotest.test_case "roundtrip" `Quick test_doc_roundtrip_to_xml;
        Alcotest.test_case "fold subtree" `Quick test_doc_fold_subtree;
        Alcotest.test_case "dtd carried" `Quick test_doc_dtd_carried;
      ] );
    ( "store.dewey",
      [
        Alcotest.test_case "labels" `Quick test_dewey_labels;
        Alcotest.test_case "order = preorder" `Quick test_dewey_order_is_preorder;
        Alcotest.test_case "lca agrees" `Quick test_dewey_lca_agrees;
      ] );
    ( "store.tokenizer",
      [
        Alcotest.test_case "basics" `Quick test_tokenizer_basic;
        Alcotest.test_case "case folding" `Quick test_tokenizer_case;
        Alcotest.test_case "normalize" `Quick test_tokenizer_normalize;
        Alcotest.test_case "utf8" `Quick test_tokenizer_utf8;
      ] );
    ( "store.index",
      [
        Alcotest.test_case "value match" `Quick test_index_value_match;
        Alcotest.test_case "tag match" `Quick test_index_tag_match;
        Alcotest.test_case "case insensitive" `Quick test_index_case_insensitive;
        Alcotest.test_case "missing keyword" `Quick test_index_missing;
        Alcotest.test_case "postings sorted/unique" `Quick test_index_postings_sorted_unique;
        Alcotest.test_case "match kind" `Quick test_index_match_kind;
        Alcotest.test_case "sizes" `Quick test_index_sizes;
      ] );
    ( "store.dataguide",
      [
        Alcotest.test_case "paths" `Quick test_guide_paths;
        Alcotest.test_case "path of node" `Quick test_guide_path_of_node;
        Alcotest.test_case "instance counts" `Quick test_guide_instance_counts;
        Alcotest.test_case "find misses" `Quick test_guide_find_path_misses;
        Alcotest.test_case "parent/depth" `Quick test_guide_parent_and_depth;
        Alcotest.test_case "text node error" `Quick test_guide_text_node_error;
      ] );
    ( "store.schema_infer",
      [
        Alcotest.test_case "star from data" `Quick test_schema_star_from_data;
        Alcotest.test_case "dtd overrides" `Quick test_schema_dtd_overrides_data;
        Alcotest.test_case "dtd negative" `Quick test_schema_dtd_negative_override;
        Alcotest.test_case "starred list" `Quick test_schema_starred_paths_list;
      ] );
    ( "store.node_kind",
      [
        Alcotest.test_case "small doc" `Quick test_kinds_small;
        Alcotest.test_case "connection" `Quick test_kinds_connection;
        Alcotest.test_case "node level" `Quick test_kinds_node_level;
        Alcotest.test_case "nearest entity" `Quick test_kinds_nearest_entity;
        Alcotest.test_case "attribute value" `Quick test_kinds_attribute_value;
        Alcotest.test_case "entity of attribute" `Quick test_kinds_entity_of_attribute;
        Alcotest.test_case "lists" `Quick test_kinds_lists;
        Alcotest.test_case "empty element" `Quick test_kinds_empty_element;
      ] );
    ( "store.key_miner",
      [
        Alcotest.test_case "unique attribute" `Quick test_keys_unique_attribute;
        Alcotest.test_case "instance value" `Quick test_keys_instance_value;
        Alcotest.test_case "no unique" `Quick test_keys_no_unique;
        Alcotest.test_case "preferred names" `Quick test_keys_prefer_conventional_names;
        Alcotest.test_case "coverage required" `Quick test_keys_coverage_required;
        Alcotest.test_case "candidates ranked" `Quick test_keys_candidates_ranked;
        Alcotest.test_case "duplicated instances" `Quick test_keys_duplicated_attr_instances;
      ] );
    ( "store.doc_stats",
      [
        Alcotest.test_case "small doc" `Quick test_stats_small;
        Alcotest.test_case "row width" `Quick test_stats_row_matches_header;
      ] );
  ]
