(* Integration tests: the full pipeline on every synthetic dataset, engine
   interoperability, serialization round trips through the store, and
   determinism guarantees. *)

module Document = Extract_store.Document
module Doc_stats = Extract_store.Doc_stats
module Node_kind = Extract_store.Node_kind
module Inverted_index = Extract_store.Inverted_index
module Engine = Extract_search.Engine
module Query = Extract_search.Query
module Result_tree = Extract_search.Result_tree
module Pipeline = Extract_snippet.Pipeline
module Selector = Extract_snippet.Selector
module Ilist = Extract_snippet.Ilist
module Snippet_tree = Extract_snippet.Snippet_tree
module Datagen = Extract_datagen

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let datasets =
  [
    "retail", (fun () -> Datagen.Retail.generate Datagen.Retail.default);
    "movies", (fun () -> Datagen.Movies.generate Datagen.Movies.default);
    "auction", (fun () -> Datagen.Auction.generate Datagen.Auction.default);
    "bib", (fun () -> Datagen.Bib.generate Datagen.Bib.default);
  ]

let build name gen = name, Pipeline.build (Document.of_document (gen ()))

let built = lazy (List.map (fun (n, g) -> build n g) datasets)

(* ------------------------------------------------------------------ *)
(* Generators produce valid, well-shaped documents *)

let test_generators_parse_back () =
  List.iter
    (fun (name, gen) ->
      let doc = gen () in
      let serialized = Extract_xml.Printer.document_to_string doc in
      let reparsed = Extract_xml.Parser.parse_document serialized in
      check bool
        (name ^ " roundtrips through the printer")
        true
        (Extract_xml.Types.equal
           (Extract_xml.Types.Element doc.Extract_xml.Types.root)
           (Extract_xml.Types.Element reparsed.Extract_xml.Types.root)))
    datasets

let test_generators_deterministic () =
  List.iter
    (fun (name, gen) ->
      let a = Extract_xml.Printer.document_to_string (gen ()) in
      let b = Extract_xml.Printer.document_to_string (gen ()) in
      check bool (name ^ " deterministic") true (String.equal a b))
    datasets

let test_generators_have_entities_and_keys () =
  List.iter
    (fun (name, db) ->
      let stats = Doc_stats.compute (Pipeline.kinds db) in
      check bool (name ^ " has entities") true (stats.Doc_stats.entity_paths > 0);
      check bool (name ^ " has attributes") true (stats.Doc_stats.attribute_paths > 0);
      let keys = Pipeline.keys db in
      let some_key =
        List.exists
          (fun p -> Extract_store.Key_miner.key_path keys p <> None)
          (Node_kind.entity_paths (Pipeline.kinds db))
      in
      check bool (name ^ " mines at least one key") true some_key)
    (Lazy.force built)

let test_retail_scaling () =
  let small = Document.of_document (Datagen.Retail.scaled 100) in
  let large = Document.of_document (Datagen.Retail.scaled 800) in
  check bool "scaling grows the document" true
    (Document.node_count large > 2 * Document.node_count small)

let test_movies_no_dtd_auction_dtd () =
  let movies = Document.of_document (Datagen.Movies.generate Datagen.Movies.default) in
  let auction = Document.of_document (Datagen.Auction.generate Datagen.Auction.default) in
  check bool "movies relies on inference" true (Document.dtd movies = None);
  check bool "auction carries a DTD" true (Document.dtd auction <> None)

(* ------------------------------------------------------------------ *)
(* Workload queries have results on their dataset *)

let test_workload_queries_hit () =
  List.iter
    (fun (name, db) ->
      let queries =
        Datagen.Workload.generate Datagen.Workload.default (Pipeline.kinds db)
      in
      check bool (name ^ " produces queries") true (List.length queries > 0);
      let with_results =
        List.filter (fun q -> Pipeline.search db q <> []) queries
      in
      (* every workload query is built from entity content, so the vast
         majority must produce at least one result *)
      check bool
        (Printf.sprintf "%s: %d/%d queries have results" name
           (List.length with_results) (List.length queries))
        true
        (2 * List.length with_results >= List.length queries))
    (Lazy.force built)

(* ------------------------------------------------------------------ *)
(* Full pipeline on every dataset and engine *)

let test_pipeline_all_datasets_all_engines () =
  List.iter
    (fun (name, db) ->
      let queries =
        Datagen.Workload.generate
          { Datagen.Workload.default with Datagen.Workload.queries = 5 }
          (Pipeline.kinds db)
      in
      List.iter
        (fun q ->
          List.iter
            (fun semantics ->
              List.iter
                (fun (r : Pipeline.snippet_result) ->
                  let label = Printf.sprintf "%s/%s/%s" name (Engine.string_of_semantics semantics) q in
                  check bool (label ^ " bound") true
                    (Snippet_tree.edge_count r.Pipeline.selection.Selector.snippet
                     <= Pipeline.default_bound);
                  check bool (label ^ " snippet inside result") true
                    (List.for_all
                       (fun n -> Result_tree.mem r.Pipeline.result n)
                       (Snippet_tree.nodes r.Pipeline.selection.Selector.snippet)))
                (Pipeline.run ~semantics ~limit:3 db q))
            Engine.all_semantics)
        queries)
    (Lazy.force built)

let test_pipeline_deterministic_end_to_end () =
  let doc () = Document.of_document (Datagen.Retail.generate Datagen.Retail.default) in
  let run () =
    let db = Pipeline.build (doc ()) in
    Pipeline.run ~bound:8 ~limit:5 db "apparel retailer"
    |> List.map (fun (r : Pipeline.snippet_result) ->
           Snippet_tree.render r.Pipeline.selection.Selector.snippet)
  in
  check bool "identical snippets across runs" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* Cross-engine consistency *)

let test_xseek_roots_are_entities_or_matches () =
  List.iter
    (fun (name, db) ->
      let kinds = Pipeline.kinds db in
      let doc = Pipeline.document db in
      let queries =
        Datagen.Workload.generate
          { Datagen.Workload.default with Datagen.Workload.queries = 5; seed = 17 }
          kinds
      in
      List.iter
        (fun q ->
          List.iter
            (fun r ->
              let root = Result_tree.root r in
              (* the XSeek return node is an entity unless no entity exists
                 above the SLCA *)
              let is_entity = Node_kind.is_entity kinds root in
              let no_entity_above =
                Node_kind.nearest_entity_ancestor kinds root = None
              in
              check bool
                (Printf.sprintf "%s/%s: root %s" name q (Document.tag_name doc root))
                true (is_entity || no_entity_above))
            (Pipeline.search db q))
        queries)
    (Lazy.force built)

let test_slca_count_at_least_xseek () =
  (* XSeek merges nested/duplicate return nodes, so it can only have fewer
     or equal results than SLCA. *)
  List.iter
    (fun (name, db) ->
      let queries =
        Datagen.Workload.generate
          { Datagen.Workload.default with Datagen.Workload.queries = 5; seed = 29 }
          (Pipeline.kinds db)
      in
      List.iter
        (fun q ->
          let slca = List.length (Pipeline.search ~semantics:Engine.Slca db q) in
          let xseek = List.length (Pipeline.search ~semantics:Engine.Xseek db q) in
          check bool (Printf.sprintf "%s/%s: xseek<=slca" name q) true (xseek <= slca))
        queries)
    (Lazy.force built)

(* ------------------------------------------------------------------ *)
(* File IO path *)

let test_load_via_file () =
  let doc = Datagen.Movies.sized 5 in
  let path = Filename.temp_file "extract_test" ".xml" in
  Extract_xml.Printer.write_file path doc;
  let db = Pipeline.of_file path in
  Sys.remove path;
  check bool "file pipeline works" true
    (Document.node_count (Pipeline.document db) > 0);
  check bool "query works" true (Pipeline.run db "movie" <> [])

(* ------------------------------------------------------------------ *)
(* Paper example through the serialization path *)

let test_paper_example_via_serialization () =
  let doc = Datagen.Paper_example.document () in
  let s = Extract_xml.Printer.document_to_string doc in
  let db = Pipeline.of_xml_string s in
  let results = Pipeline.run ~bound:14 db Datagen.Paper_example.query in
  check int "one result" 1 (List.length results);
  let r = List.hd results in
  let displays =
    List.map (fun (e : Ilist.entry) -> Ilist.display e.Ilist.item) (Ilist.entries r.Pipeline.ilist)
  in
  check (Alcotest.list Alcotest.string) "IList survives serialization"
    Datagen.Paper_example.expected_ilist displays

let suites =
  [
    ( "integration.generators",
      [
        Alcotest.test_case "parse back" `Quick test_generators_parse_back;
        Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
        Alcotest.test_case "entities and keys" `Quick test_generators_have_entities_and_keys;
        Alcotest.test_case "retail scaling" `Quick test_retail_scaling;
        Alcotest.test_case "dtd presence" `Quick test_movies_no_dtd_auction_dtd;
      ] );
    ( "integration.workload",
      [ Alcotest.test_case "queries hit" `Quick test_workload_queries_hit ] );
    ( "integration.pipeline",
      [
        Alcotest.test_case "all datasets x engines" `Slow test_pipeline_all_datasets_all_engines;
        Alcotest.test_case "deterministic" `Quick test_pipeline_deterministic_end_to_end;
      ] );
    ( "integration.engines",
      [
        Alcotest.test_case "xseek roots" `Quick test_xseek_roots_are_entities_or_matches;
        Alcotest.test_case "xseek <= slca" `Quick test_slca_count_at_least_xseek;
      ] );
    ( "integration.io",
      [
        Alcotest.test_case "file load" `Quick test_load_via_file;
        Alcotest.test_case "paper example serialized" `Quick test_paper_example_via_serialization;
      ] );
  ]
