  $ extract gen movies -o movies.xml
  $ extract search movies.xml "drama movie" --ranked -n 3
  $ extract snippet movies.xml "documentary movie" -b 5 -n 1 --order biased
  $ extract snippet movies.xml "drama movie" -b 5 -n 1 --differentiate
  $ extract explain movies.xml "documentary meridian" -n 1 | head -8
  $ extract demo movies.xml "drama movie" -b 5 -n 3 -o movies.html
  $ grep -c "class=\"snippet\"" movies.html
