  $ extract gen paper -o paper.xml
  $ extract stats paper.xml | head -5
  $ extract search paper.xml "Texas apparel retailer"
  $ extract snippet paper.xml "store texas" -b 6 -n 1
  $ extract explain paper.xml "Texas apparel retailer" | head -15
  $ extract view paper.xml '/retailers/retailer[2]/name'
  $ extract view paper.xml '//store[city="Austin"]' | head -5
  $ extract save paper.xml paper.arena
  $ extract search paper.arena "Texas apparel retailer"
  $ extract search paper.xml "outwear woman" --ranked -n 2 | head -3
  $ extract demo paper.xml "store texas" -b 6 -n 2 -o out.html
  $ grep -c snippet out.html
  $ extract search paper.xml "store texas" -e slca | head -2
  $ extract search paper.xml "store texas" -e xsearch | head -2
  $ extract view paper.xml 'not-a-path'
  $ extract search paper.xml "no such tokens anywhere"
  $ extract gen courses -o courses.xml
  $ extract snippet courses.xml "cs databases course" -b 6 -n 1 | head -11
  $ extract search paper.xml "store texas zzzz" --relax -n 1
