(* Unit tests for extract.search: queries, the reference LCA semantics,
   SLCA, ELCA, XSeek result construction, result trees and the engine
   facade. *)

open Extract_search
module Document = Extract_store.Document
module Inverted_index = Extract_store.Inverted_index
module Node_kind = Extract_store.Node_kind

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string
let ints = Alcotest.(list int)

let load = Document.load_string

(* Hand-checkable document (pre-order ids in comments):

   0 dept
   ├─ 1 group
   │   ├─ 2 person (3 name "ada" 4)     — matches ada
   │   └─ 5 person (6 name "alan" 7, 8 skill "logic" 9)
   └─ 10 group
       ├─ 11 person (12 name "ada" 13, 14 skill "logic" 15)
       └─ 16 note ("logic" 17)
*)
let dept =
  "<dept>\
   <group><person><name>ada</name></person>\
   <person><name>alan</name><skill>logic</skill></person></group>\
   <group><person><name>ada</name><skill>logic</skill></person>\
   <note>logic</note></group>\
   </dept>"

let lists_for _doc idx keywords = List.map (Inverted_index.lookup idx) keywords

let setup src =
  let d = load src in
  let idx = Inverted_index.build d in
  d, idx

(* ------------------------------------------------------------------ *)
(* Query *)

let test_query_of_string () =
  let q = Query.of_string "Texas, Apparel RETAILER" in
  check bool "normalized" true (Query.keywords q = [ "texas"; "apparel"; "retailer" ]);
  check int "size" 3 (Query.size q)

let test_query_dedup () =
  let q = Query.of_string "a b a" in
  check bool "dedup keeps first" true (Query.keywords q = [ "a"; "b" ])

let test_query_empty () =
  let q = Query.of_string "  ,,, " in
  check bool "empty" true (Query.is_empty q)

let test_query_mem () =
  let q = Query.of_string "texas apparel" in
  check bool "mem normalized" true (Query.mem q "TeXaS");
  check bool "not mem" false (Query.mem q "retailer")

let test_query_of_keywords () =
  let q = Query.of_keywords [ "Brook Brothers"; "suit" ] in
  check bool "multi-token split" true (Query.keywords q = [ "brook"; "brothers"; "suit" ])

(* ------------------------------------------------------------------ *)
(* Reference LCA semantics *)

let test_subtree_match_counts () =
  let d, idx = setup dept in
  let counts = Lca.subtree_match_counts d (Inverted_index.lookup idx "logic") in
  (* matches: skill 8, skill 14, note 16 *)
  check int "at match" 1 counts.(8);
  check int "group1" 1 counts.(1);
  check int "group2" 2 counts.(10);
  check int "root" 3 counts.(0);
  check int "non-ancestor" 0 counts.(2)

let test_covering_nodes () =
  let d, idx = setup dept in
  let cover = Lca.covering_nodes d (lists_for d idx [ "ada"; "logic" ]) in
  (* person 11 has both; group 10 and dept 0 contain both; group 1 has ada
     (via person 2) and logic (via skill 8) *)
  check ints "covering" [ 0; 1; 10; 11 ] cover

let test_slca_reference () =
  let d, idx = setup dept in
  let slcas = Lca.slca_reference d (lists_for d idx [ "ada"; "logic" ]) in
  check ints "slcas" [ 1; 11 ] slcas

let test_covering_empty_list () =
  let d, idx = setup dept in
  check ints "missing keyword" [] (Lca.covering_nodes d (lists_for d idx [ "ada"; "zzz" ]));
  check ints "no lists" [] (Lca.covering_nodes d [])

(* ------------------------------------------------------------------ *)
(* SLCA merge algorithm *)

let test_slca_two_keywords () =
  let d, idx = setup dept in
  let slcas = Slca.compute d (lists_for d idx [ "ada"; "logic" ]) in
  check ints "matches reference" [ 1; 11 ] slcas

let test_slca_single_keyword () =
  let d, idx = setup dept in
  let slcas = Slca.compute d (lists_for d idx [ "logic" ]) in
  (* single keyword: the match nodes themselves *)
  check ints "match nodes" [ 8; 14; 16 ] slcas

let test_slca_tag_keyword () =
  let d, idx = setup dept in
  let slcas = Slca.compute d (lists_for d idx [ "person"; "logic" ]) in
  (* persons containing logic: 5 and 11; note 16's logic has no person *)
  check ints "persons with logic" [ 5; 11 ] slcas

let test_slca_empty_keyword () =
  let d, idx = setup dept in
  check ints "conjunctive" [] (Slca.compute d (lists_for d idx [ "ada"; "nosuch" ]))

let test_slca_three_keywords () =
  let d, idx = setup dept in
  let slcas = Slca.compute d (lists_for d idx [ "ada"; "alan"; "logic" ]) in
  check ints "only group1" [ 1 ] slcas

let test_slca_root_result () =
  let d, idx = setup "<r><a>x</a><b>y</b></r>" in
  let slcas = Slca.compute d (lists_for d idx [ "x"; "y" ]) in
  check ints "root is the slca" [ 0 ] slcas

let test_slca_matches_reference_on_examples () =
  List.iter
    (fun (src, keywords) ->
      let d, idx = setup src in
      let lists = lists_for d idx keywords in
      check ints
        (Printf.sprintf "src=%s" (String.concat "," keywords))
        (Lca.slca_reference d lists) (Slca.compute d lists))
    [
      dept, [ "ada"; "logic" ];
      dept, [ "group"; "ada" ];
      dept, [ "logic"; "note" ];
      dept, [ "person"; "name" ];
      "<r><a><b>k1</b><c>k2</c></a><a><b>k1 k2</b></a></r>", [ "k1"; "k2" ];
      "<r><x>w</x><y><z>w v</z></y></r>", [ "w"; "v" ];
    ]

let test_closest_in () =
  let arr = [| 2; 5; 9 |] in
  check bool "inside" true (Slca.closest_in arr ~lo:4 ~hi:6 = Some 5);
  check bool "boundary" true (Slca.closest_in arr ~lo:9 ~hi:20 = Some 9);
  check bool "miss" true (Slca.closest_in arr ~lo:6 ~hi:8 = None)

(* ------------------------------------------------------------------ *)
(* ELCA *)

let test_elca_includes_slca () =
  let d, idx = setup dept in
  let slcas = Slca.compute d (lists_for d idx [ "ada"; "logic" ]) in
  let elcas = Elca.compute d (lists_for d idx [ "ada"; "logic" ]) in
  List.iter
    (fun s -> check bool (Printf.sprintf "slca %d is elca" s) true (List.mem s elcas))
    slcas

let test_elca_extra_witness () =
  (* dept contains an independent logic witness (note 16) plus an
     independent ada witness (person 2, inside group 1 which is covering —
     but group 1 is covering so it blocks). Check against the published
     definition by hand:
     - group 1 covers (ada via person2, logic via skill8): ELCA iff
       exclusive matches exist: person 2 not covering -> ada counts;
       person 5 not covering? person 5 subtree has logic only -> not
       covering; so logic via skill8 counts: group1 is ELCA.
     - person 11 covers both directly: ELCA.
     - group 10: children person 11 (covering, blocked) and note 16
       (logic). After blocking person 11, group 10 has logic but no ada:
       not an ELCA.
     - dept 0: children group 1 (covering, blocked), group 10 (covering?
       group 10 contains ada (12) and logic -> covering, blocked). Nothing
       left: not an ELCA. *)
  let d, idx = setup dept in
  let elcas = Elca.compute d (lists_for d idx [ "ada"; "logic" ]) in
  check ints "elcas" [ 1; 11 ] elcas

let test_elca_ancestor_witness () =
  (* <r><m>k1 k2</m><n>k1</n><o>k2</o></r>: m is ELCA; r has independent
     k1 (n) and k2 (o) outside m, so r is also an ELCA. *)
  let d, idx = setup "<r><m>k1 k2</m><n>k1</n><o>k2</o></r>" in
  let elcas = Elca.compute d (lists_for d idx [ "k1"; "k2" ]) in
  check ints "m and r" [ 0; 1 ] elcas

let test_elca_empty () =
  let d, idx = setup dept in
  check ints "missing keyword" [] (Elca.compute d (lists_for d idx [ "ada"; "zzz" ]))

(* ------------------------------------------------------------------ *)
(* Result trees *)

let test_result_full () =
  let d, _ = setup dept in
  let r = Result_tree.full d 1 in
  check int "root" 1 (Result_tree.root r);
  check int "size" 9 (Result_tree.size r);
  check bool "member" true (Result_tree.mem r 8);
  check bool "outside" false (Result_tree.mem r 11)

let test_result_of_members_closure () =
  let d, _ = setup dept in
  (* give only deep nodes; ancestors must be added *)
  let r = Result_tree.of_members d ~root:0 [ 8; 14 ] in
  check bool "ancestor group1" true (Result_tree.mem r 1);
  check bool "ancestor person5" true (Result_tree.mem r 5);
  check bool "root in" true (Result_tree.mem r 0);
  check bool "sibling not in" false (Result_tree.mem r 2)

let test_result_of_members_outside () =
  let d, _ = setup dept in
  Alcotest.check_raises "outside root"
    (Invalid_argument "Result_tree: a member lies outside the root's subtree") (fun () ->
      ignore (Result_tree.of_members d ~root:1 [ 11 ]))

let test_result_children_and_parent () =
  let d, _ = setup dept in
  let r = Result_tree.of_members d ~root:0 [ 8; 14 ] in
  check bool "children of root" true (Result_tree.children r 0 = [ 1; 10 ]);
  check bool "parent in" true (Result_tree.parent_in r 1 = Some 0);
  check bool "root parent" true (Result_tree.parent_in r 0 = None)

let test_result_edge_count () =
  let d, _ = setup dept in
  let r = Result_tree.full d 1 in
  (* elements under group 1: group, person, name, person, name, skill = 6 *)
  check int "elements" 6 (Result_tree.element_size r);
  check int "edges" 5 (Result_tree.edge_count r)

let test_result_restrict_matches () =
  let d, idx = setup dept in
  let r = Result_tree.full d 1 in
  check bool "restricted" true
    (Result_tree.restrict_matches r (Inverted_index.lookup idx "logic") = [ 8 ])

let test_result_text () =
  let d, _ = setup "<r><a>one</a><b>two</b></r>" in
  let r = Result_tree.full d 0 in
  check string "text" "one two" (Result_tree.text_of r)

let test_result_to_xml () =
  let d, _ = setup "<r><a>one</a><b>two</b></r>" in
  let r = Result_tree.full d 0 in
  let xml = Result_tree.to_xml r in
  check bool "roundtrip" true (Extract_xml.Types.text_content xml = "onetwo")

(* ------------------------------------------------------------------ *)
(* XSeek *)

let shop =
  "<shop>\
   <item><sku>A1</sku><kind>chair</kind></item>\
   <item><sku>A2</sku><kind>table</kind></item>\
   </shop>"
(* ids: 0 shop, 1 item, 2 sku, 3 "A1", 4 kind, 5 "chair",
        6 item, 7 sku, 8 "A2", 9 kind, 10 "table" *)

let test_xseek_return_node () =
  let d = load shop in
  let kinds = Node_kind.of_document d in
  (* slca for "chair" alone is the kind node 4; return node = item 1 *)
  check int "entity lift" 1 (Xseek.return_node kinds 4);
  check int "entity itself" 1 (Xseek.return_node kinds 1);
  (* shop is a connection; nothing above: falls back to the node itself *)
  check int "no entity above root" 0 (Xseek.return_node kinds 0)

let test_xseek_results () =
  let d = load shop in
  let kinds = Node_kind.of_document d in
  let idx = Inverted_index.build d in
  let results = Xseek.compute idx kinds (Query.of_string "chair") in
  check int "one result" 1 (List.length results);
  let r = List.hd results in
  check int "rooted at item" 1 (Result_tree.root r);
  check int "full subtree" 3 (Result_tree.element_size r)

let test_xseek_dedupe () =
  (* two matches inside the same item must give one result *)
  let d = load shop in
  let kinds = Node_kind.of_document d in
  let idx = Inverted_index.build d in
  let results = Xseek.compute idx kinds (Query.of_string "a1 chair") in
  check int "single deduped result" 1 (List.length results)

let test_xseek_nested_outermost () =
  (* nested entities: slcas inside both parent and child entity collapse to
     the outermost return node *)
  let src =
    "<r><part><pid>p</pid><sub><sid>s1</sid></sub><sub><sid>s2</sid></sub></part>\
     <part><pid>q</pid><sub><sid>s3</sid></sub><sub><sid>s4</sid></sub></part></r>"
  in
  let d = load src in
  let kinds = Node_kind.of_document d in
  let idx = Inverted_index.build d in
  let results = Xseek.compute idx kinds (Query.of_string "sub") in
  (* keyword "sub" matches 4 sub entities; return nodes are the subs
     themselves (they are entities), none nested in another sub *)
  check int "four subs" 4 (List.length results)

(* ------------------------------------------------------------------ *)
(* Engine facade *)

let test_engine_defaults () =
  let d = load shop in
  let kinds = Node_kind.of_document d in
  let idx = Inverted_index.build d in
  let results = Engine.run idx kinds (Query.of_string "chair") in
  check int "xseek default" 1 (List.length results);
  check int "entity root" 1 (Result_tree.root (List.hd results))

let test_engine_slca_vs_xseek_roots () =
  let d = load shop in
  let kinds = Node_kind.of_document d in
  let idx = Inverted_index.build d in
  let slca = Engine.run ~semantics:Engine.Slca idx kinds (Query.of_string "chair") in
  check int "slca root is the kind node" 4 (Result_tree.root (List.hd slca))

let test_engine_limit () =
  let d = load shop in
  let kinds = Node_kind.of_document d in
  let idx = Inverted_index.build d in
  let results = Engine.run ~limit:1 idx kinds (Query.of_string "item") in
  check int "limited" 1 (List.length results)

let test_engine_empty_query () =
  let d = load shop in
  let kinds = Node_kind.of_document d in
  let idx = Inverted_index.build d in
  check int "no keywords" 0 (List.length (Engine.run idx kinds (Query.of_string " ")))

let test_engine_match_paths_shape () =
  let d = load shop in
  let kinds = Node_kind.of_document d in
  let idx = Inverted_index.build d in
  let full = Engine.run ~shape:Engine.Full_subtree idx kinds (Query.of_string "chair") in
  let paths = Engine.run ~shape:Engine.Match_paths idx kinds (Query.of_string "chair") in
  let fr = List.hd full and pr = List.hd paths in
  check bool "pruned is smaller" true (Result_tree.size pr < Result_tree.size fr);
  check bool "match node kept" true (Result_tree.mem pr 4);
  check bool "sku dropped" false (Result_tree.mem pr 2)

let test_engine_semantics_strings () =
  check bool "roundtrip" true
    (List.for_all
       (fun s -> Engine.semantics_of_string (Engine.string_of_semantics s) = Some s)
       Engine.all_semantics);
  check bool "unknown" true (Engine.semantics_of_string "bogus" = None)

let suites =
  [
    ( "search.query",
      [
        Alcotest.test_case "of_string" `Quick test_query_of_string;
        Alcotest.test_case "dedup" `Quick test_query_dedup;
        Alcotest.test_case "empty" `Quick test_query_empty;
        Alcotest.test_case "mem" `Quick test_query_mem;
        Alcotest.test_case "of_keywords" `Quick test_query_of_keywords;
      ] );
    ( "search.lca",
      [
        Alcotest.test_case "match counts" `Quick test_subtree_match_counts;
        Alcotest.test_case "covering nodes" `Quick test_covering_nodes;
        Alcotest.test_case "slca reference" `Quick test_slca_reference;
        Alcotest.test_case "empty lists" `Quick test_covering_empty_list;
      ] );
    ( "search.slca",
      [
        Alcotest.test_case "two keywords" `Quick test_slca_two_keywords;
        Alcotest.test_case "single keyword" `Quick test_slca_single_keyword;
        Alcotest.test_case "tag keyword" `Quick test_slca_tag_keyword;
        Alcotest.test_case "missing keyword" `Quick test_slca_empty_keyword;
        Alcotest.test_case "three keywords" `Quick test_slca_three_keywords;
        Alcotest.test_case "root result" `Quick test_slca_root_result;
        Alcotest.test_case "vs reference" `Quick test_slca_matches_reference_on_examples;
        Alcotest.test_case "closest_in" `Quick test_closest_in;
      ] );
    ( "search.elca",
      [
        Alcotest.test_case "contains slcas" `Quick test_elca_includes_slca;
        Alcotest.test_case "blocking" `Quick test_elca_extra_witness;
        Alcotest.test_case "ancestor witness" `Quick test_elca_ancestor_witness;
        Alcotest.test_case "missing keyword" `Quick test_elca_empty;
      ] );
    ( "search.result_tree",
      [
        Alcotest.test_case "full" `Quick test_result_full;
        Alcotest.test_case "upward closure" `Quick test_result_of_members_closure;
        Alcotest.test_case "outside root" `Quick test_result_of_members_outside;
        Alcotest.test_case "children/parent" `Quick test_result_children_and_parent;
        Alcotest.test_case "edge count" `Quick test_result_edge_count;
        Alcotest.test_case "restrict matches" `Quick test_result_restrict_matches;
        Alcotest.test_case "text" `Quick test_result_text;
        Alcotest.test_case "to_xml" `Quick test_result_to_xml;
      ] );
    ( "search.xseek",
      [
        Alcotest.test_case "return node" `Quick test_xseek_return_node;
        Alcotest.test_case "results" `Quick test_xseek_results;
        Alcotest.test_case "dedupe" `Quick test_xseek_dedupe;
        Alcotest.test_case "nested outermost" `Quick test_xseek_nested_outermost;
      ] );
    ( "search.engine",
      [
        Alcotest.test_case "defaults" `Quick test_engine_defaults;
        Alcotest.test_case "slca roots" `Quick test_engine_slca_vs_xseek_roots;
        Alcotest.test_case "limit" `Quick test_engine_limit;
        Alcotest.test_case "empty query" `Quick test_engine_empty_query;
        Alcotest.test_case "match paths" `Quick test_engine_match_paths_shape;
        Alcotest.test_case "semantics strings" `Quick test_engine_semantics_strings;
      ] );
  ]
