(* Targeted edge cases across the pipeline: degenerate documents, queries
   that match structure only, oversized bounds, multi-token values, value
   truncation, and Match_paths-shaped snippet inputs. *)

module Document = Extract_store.Document
module Inverted_index = Extract_store.Inverted_index
module Node_kind = Extract_store.Node_kind
module Engine = Extract_search.Engine
module Query = Extract_search.Query
module Result_tree = Extract_search.Result_tree
open Extract_snippet

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let contains_substring hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec loop i = i + ln <= lh && (String.sub hay i ln = needle || loop (i + 1)) in
  ln = 0 || loop 0

(* ------------------------------------------------------------------ *)
(* Degenerate documents *)

let test_single_element_document () =
  let db = Pipeline.of_xml_string "<only/>" in
  check int "tag query hits the root" 1 (List.length (Pipeline.run db "only"));
  check int "no match" 0 (List.length (Pipeline.run db "other"))

let test_text_only_root () =
  let db = Pipeline.of_xml_string "<r>just words here</r>" in
  let results = Pipeline.run ~bound:3 db "words" in
  check int "one result" 1 (List.length results);
  let r = List.hd results in
  check int "snippet is the root alone" 0
    (Snippet_tree.edge_count r.Pipeline.selection.Selector.snippet)

let test_root_is_attribute_shaped () =
  (* root with a single text child: classified Connection (root is never
     starred, but it has text...) — must not crash anywhere *)
  let db = Pipeline.of_xml_string "<r>v</r>" in
  let stats = Extract_store.Doc_stats.compute (Pipeline.kinds db) in
  check int "two nodes" 2 stats.Extract_store.Doc_stats.nodes

let test_deep_chain_document () =
  let src = "<a><b><c><d><e><f>deep</f></e></d></c></b></a>" in
  let db = Pipeline.of_xml_string src in
  let results = Pipeline.run ~bound:2 db "deep" in
  check int "one result" 1 (List.length results);
  (* bound 2 cannot reach depth 5 below the result root: the keyword is
     skipped but nothing breaks *)
  let r = List.hd results in
  check bool "bound respected" true
    (Snippet_tree.edge_count r.Pipeline.selection.Selector.snippet <= 2)

let test_identical_siblings () =
  let db = Pipeline.of_xml_string "<r><x><v>same</v></x><x><v>same</v></x><x><v>same</v></x></r>" in
  let results = Pipeline.run db "same" in
  check bool "results exist" true (results <> [])

(* ------------------------------------------------------------------ *)
(* Queries *)

let test_query_only_structure () =
  (* every keyword is a tag name; no text matches at all *)
  let db = Pipeline.of_xml_string "<shop><item><price>5</price></item><item><price>7</price></item></shop>" in
  let results = Pipeline.run db "item price" in
  check int "both items" 2 (List.length results)

let test_query_repeated_keyword () =
  let db = Pipeline.of_xml_string "<r><a>x</a></r>" in
  check int "x x x dedups" 1 (List.length (Pipeline.run db "x x x"))

let test_query_numeric_keywords () =
  let db = Pipeline.of_xml_string "<r><y>1999</y><y>2001</y></r>" in
  check int "numeric match" 1 (List.length (Pipeline.run ~semantics:Engine.Slca db "1999"))

let test_many_keywords_conjunctive () =
  let db = Pipeline.of_xml_string "<r><e><a>p</a><b>q</b><c>s</c><d>t</d></e></r>" in
  check int "all four under e" 1 (List.length (Pipeline.run ~semantics:Engine.Slca db "p q s t"));
  check int "one missing kills it" 0 (List.length (Pipeline.run db "p q s t zzz"))

(* ------------------------------------------------------------------ *)
(* Bounds *)

let test_bound_zero_everywhere () =
  let db = Pipeline.of_xml_string "<r><e><k>key1</k></e><e><k>key2</k></e></r>" in
  List.iter
    (fun (r : Pipeline.snippet_result) ->
      check int "zero edges" 0 (Snippet_tree.edge_count r.Pipeline.selection.Selector.snippet))
    (Pipeline.run ~bound:0 db "e key1")

let test_bound_exceeds_result () =
  let db = Pipeline.of_xml_string "<r><e><k>v</k></e><e><k>w</k></e></r>" in
  List.iter
    (fun (r : Pipeline.snippet_result) ->
      (* snippet can never have more edges than the result *)
      check bool "within result" true
        (Snippet_tree.edge_count r.Pipeline.selection.Selector.snippet
        <= Result_tree.element_size r.Pipeline.result - 1))
    (Pipeline.run ~bound:10_000 db "v")

(* ------------------------------------------------------------------ *)
(* Multi-token values *)

let test_multi_token_key_coverage () =
  (* the key "Brook Brothers" is two tokens; its IList entry is one item
     covered by one attribute node *)
  let db =
    Pipeline.build
      (Document.of_document (Extract_datagen.Paper_example.document ()))
  in
  let results = Pipeline.run ~bound:6 db "texas apparel retailer" in
  let r = List.hd results in
  let rendered = Snippet_tree.render r.Pipeline.selection.Selector.snippet in
  check bool "full key shown" true (contains_substring rendered "Brook Brothers")

let test_multi_token_query_same_node () =
  (* both keywords match the same node: SLCA is that node *)
  let db = Pipeline.of_xml_string "<r><n>brook brothers</n><n>other</n></r>" in
  let results = Pipeline.run ~semantics:Engine.Slca db "brook brothers" in
  check int "one result" 1 (List.length results)

(* ------------------------------------------------------------------ *)
(* Value truncation *)

let test_render_truncates_long_values () =
  let long = String.make 100 'x' in
  let db = Pipeline.of_xml_string (Printf.sprintf "<r><c>%s</c><c>y</c></r>" long) in
  let result = Result_tree.full (Pipeline.document db) 0 in
  let snippet = Snippet_tree.create result in
  ignore (Snippet_tree.add snippet 1);
  let full = Snippet_tree.render snippet in
  check bool "untruncated by default" true (contains_substring full long);
  let cut = Snippet_tree.render ~max_value:10 snippet in
  check bool "truncated" false (contains_substring cut (String.make 11 'x'));
  check bool "ellipsis" true (contains_substring cut "\xe2\x80\xa6")

let test_truncation_exact_boundary () =
  let db = Pipeline.of_xml_string "<r><c>12345</c><c>y</c></r>" in
  let result = Result_tree.full (Pipeline.document db) 0 in
  let snippet = Snippet_tree.create result in
  ignore (Snippet_tree.add snippet 1);
  let s = Snippet_tree.render ~max_value:5 snippet in
  check bool "exact length untouched" true (contains_substring s "\"12345\"")

(* ------------------------------------------------------------------ *)
(* Match_paths-shaped results through the snippet pipeline *)

let test_snippets_on_pruned_results () =
  let db =
    Pipeline.build
      (Document.of_document
         (Extract_datagen.Retail.generate
            { Extract_datagen.Retail.default with Extract_datagen.Retail.retailers = 2 }))
  in
  let index = Pipeline.index db in
  let kinds = Pipeline.kinds db in
  let q = Query.of_string "apparel retailer" in
  let pruned = Engine.run ~shape:Engine.Match_paths index kinds q in
  check bool "pruned results exist" true (pruned <> []);
  List.iter
    (fun result ->
      let out = Pipeline.snippet_of ~bound:5 db result q in
      check bool "bound on pruned" true
        (Snippet_tree.edge_count out.Pipeline.selection.Selector.snippet <= 5);
      List.iter
        (fun n -> check bool "snippet inside pruned result" true (Result_tree.mem result n))
        (Snippet_tree.nodes out.Pipeline.selection.Selector.snippet))
    pruned

(* ------------------------------------------------------------------ *)
(* Unicode round trips through the whole stack *)

let test_unicode_end_to_end () =
  let db = Pipeline.of_xml_string "<r><name>caf\xc3\xa9 m\xc3\xbcnchen</name><name>plain</name></r>" in
  let results = Pipeline.run db "caf\xc3\xa9" in
  check int "utf8 keyword matches" 1 (List.length results);
  let r = List.hd results in
  check bool "value survives rendering" true
    (contains_substring (Snippet_tree.render r.Pipeline.selection.Selector.snippet) "caf\xc3\xa9")

let test_escaped_content_end_to_end () =
  let db = Pipeline.of_xml_string "<r><v>a &amp; b</v><v>c</v></r>" in
  let results = Pipeline.run ~semantics:Engine.Slca db "b" in
  check int "decoded text indexed" 1 (List.length results)

(* ------------------------------------------------------------------ *)
(* Parallel snippet generation *)

let test_parallel_equals_sequential () =
  let db =
    Pipeline.build
      (Document.of_document (Extract_datagen.Retail.generate Extract_datagen.Retail.default))
  in
  let render (r : Pipeline.snippet_result) =
    Snippet_tree.render r.Pipeline.selection.Selector.snippet
  in
  List.iter
    (fun q ->
      let seq = List.map render (Pipeline.run ~bound:8 db q) in
      List.iter
        (fun domains ->
          let par = List.map render (Pipeline.run_parallel ~bound:8 ~domains db q) in
          check bool
            (Printf.sprintf "%s with %d domains" q domains)
            true (par = seq))
        [ 1; 2; 4; 7 ])
    [ "apparel retailer"; "jeans store"; "nosuchthing" ]

let test_parallel_more_domains_than_results () =
  let db = Pipeline.of_xml_string "<r><e><v>only</v></e><e><v>other</v></e></r>" in
  let out = Pipeline.run_parallel ~domains:16 db "only" in
  check int "one result" 1 (List.length out)

let suites =
  [
    ( "edge.parallel",
      [
        Alcotest.test_case "equals sequential" `Quick test_parallel_equals_sequential;
        Alcotest.test_case "domains > results" `Quick test_parallel_more_domains_than_results;
      ] );
    ( "edge.documents",
      [
        Alcotest.test_case "single element" `Quick test_single_element_document;
        Alcotest.test_case "text-only root" `Quick test_text_only_root;
        Alcotest.test_case "attribute-shaped root" `Quick test_root_is_attribute_shaped;
        Alcotest.test_case "deep chain" `Quick test_deep_chain_document;
        Alcotest.test_case "identical siblings" `Quick test_identical_siblings;
      ] );
    ( "edge.queries",
      [
        Alcotest.test_case "structure only" `Quick test_query_only_structure;
        Alcotest.test_case "repeated keyword" `Quick test_query_repeated_keyword;
        Alcotest.test_case "numeric" `Quick test_query_numeric_keywords;
        Alcotest.test_case "many keywords" `Quick test_many_keywords_conjunctive;
      ] );
    ( "edge.bounds",
      [
        Alcotest.test_case "zero" `Quick test_bound_zero_everywhere;
        Alcotest.test_case "oversized" `Quick test_bound_exceeds_result;
      ] );
    ( "edge.values",
      [
        Alcotest.test_case "multi-token key" `Quick test_multi_token_key_coverage;
        Alcotest.test_case "multi-token query" `Quick test_multi_token_query_same_node;
        Alcotest.test_case "truncation" `Quick test_render_truncates_long_values;
        Alcotest.test_case "truncation boundary" `Quick test_truncation_exact_boundary;
      ] );
    ( "edge.shapes",
      [ Alcotest.test_case "pruned results" `Quick test_snippets_on_pruned_results ] );
    ( "edge.unicode",
      [
        Alcotest.test_case "utf8 end to end" `Quick test_unicode_end_to_end;
        Alcotest.test_case "escaped content" `Quick test_escaped_content_end_to_end;
      ] );
  ]
