(* Tests for the DTD validator (derivative-based content-model matching),
   the stemmer/stopwords, and multi-document corpora. *)

module Dtd = Extract_xml.Dtd
module Validator = Extract_xml.Validator
module Types = Extract_xml.Types
module Parser = Extract_xml.Parser
module Stemmer = Extract_store.Stemmer
module Document = Extract_store.Document
open Extract_snippet

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let model_of s = Option.get (Dtd.element_model (Dtd.parse (Printf.sprintf "<!ELEMENT e %s>" s)) "e")

(* ------------------------------------------------------------------ *)
(* Content-model matching (derivatives) *)

let test_match_sequence () =
  let m = model_of "(a, b, c)" in
  check bool "exact" true (Validator.matches_model m [ "a"; "b"; "c" ]);
  check bool "missing" false (Validator.matches_model m [ "a"; "b" ]);
  check bool "extra" false (Validator.matches_model m [ "a"; "b"; "c"; "c" ]);
  check bool "order" false (Validator.matches_model m [ "b"; "a"; "c" ])

let test_match_star_plus_opt () =
  let star = model_of "(a*)" in
  check bool "star empty" true (Validator.matches_model star []);
  check bool "star many" true (Validator.matches_model star [ "a"; "a"; "a" ]);
  check bool "star wrong" false (Validator.matches_model star [ "b" ]);
  let plus = model_of "(a+)" in
  check bool "plus empty" false (Validator.matches_model plus []);
  check bool "plus one" true (Validator.matches_model plus [ "a" ]);
  let opt = model_of "(a?)" in
  check bool "opt empty" true (Validator.matches_model opt []);
  check bool "opt one" true (Validator.matches_model opt [ "a" ]);
  check bool "opt two" false (Validator.matches_model opt [ "a"; "a" ])

let test_match_choice_nesting () =
  let m = model_of "((a | b)+, c?)" in
  check bool "mixed choice" true (Validator.matches_model m [ "a"; "b"; "a" ]);
  check bool "with c" true (Validator.matches_model m [ "b"; "c" ]);
  check bool "c alone" false (Validator.matches_model m [ "c" ]);
  check bool "c first" false (Validator.matches_model m [ "c"; "a" ])

let test_match_paper_schema () =
  let m = model_of "(name, product, store*)" in
  check bool "no store" true (Validator.matches_model m [ "name"; "product" ]);
  check bool "many stores" true
    (Validator.matches_model m [ "name"; "product"; "store"; "store"; "store" ]);
  check bool "missing product" false (Validator.matches_model m [ "name"; "store" ])

let test_match_ambiguous_model () =
  (* (a?, a) needs backtracking-free matching: "a" alone must match via the
     optional branch being empty *)
  let m = model_of "(a?, a)" in
  check bool "one a" true (Validator.matches_model m [ "a" ]);
  check bool "two a" true (Validator.matches_model m [ "a"; "a" ]);
  check bool "none" false (Validator.matches_model m []);
  check bool "three" false (Validator.matches_model m [ "a"; "a"; "a" ])

let test_match_empty_any_mixed () =
  check bool "EMPTY" true (Validator.matches_model (model_of "EMPTY") []);
  check bool "EMPTY nonempty" false (Validator.matches_model (model_of "EMPTY") [ "a" ]);
  check bool "ANY" true (Validator.matches_model (model_of "ANY") [ "x"; "y" ]);
  let mixed = model_of "(#PCDATA | em)*" in
  check bool "mixed ok" true (Validator.matches_model mixed [ "em"; "em" ]);
  check bool "mixed bad" false (Validator.matches_model mixed [ "strong" ])

(* ------------------------------------------------------------------ *)
(* Document validation *)

let root_of s = (Parser.parse_document s).Types.root

let library_dtd =
  Dtd.parse
    "<!ELEMENT lib (book*)> <!ELEMENT book (title, author+)>\
     <!ELEMENT title (#PCDATA)> <!ELEMENT author (#PCDATA)>"

let test_validate_ok () =
  let root = root_of "<lib><book><title>t</title><author>a</author></book></lib>" in
  check bool "valid" true (Validator.is_valid library_dtd root);
  check int "no violations" 0 (List.length (Validator.validate library_dtd root))

let test_validate_bad_children () =
  let root = root_of "<lib><book><author>a</author></book></lib>" in
  match Validator.validate library_dtd root with
  | [ { Validator.element = "book"; kind = Validator.Unexpected_children [ "author" ] } ] -> ()
  | other -> Alcotest.failf "unexpected violations (%d)" (List.length other)

let test_validate_text_in_element_content () =
  let root = root_of "<lib>stray text</lib>" in
  check bool "text flagged" true
    (List.exists
       (fun v -> v.Validator.kind = Validator.Unexpected_text)
       (Validator.validate library_dtd root))

let test_validate_pcdata_with_children () =
  let root = root_of "<lib><book><title><b>no</b></title><author>a</author></book></lib>" in
  check bool "pcdata violation" true
    (List.exists
       (fun v -> v.Validator.element = "title")
       (Validator.validate library_dtd root))

let test_validate_strict_undeclared () =
  let root = root_of "<lib><mystery/></lib>" in
  check bool "lenient ignores" true
    (List.for_all
       (fun v -> v.Validator.kind <> Validator.Undeclared_element)
       (Validator.validate library_dtd root));
  check bool "strict flags" true
    (List.exists
       (fun v -> v.Validator.kind = Validator.Undeclared_element)
       (Validator.validate ~strict:true library_dtd root))

let test_generators_validate_against_their_dtds () =
  List.iter
    (fun (name, doc) ->
      match doc.Types.dtd with
      | None -> Alcotest.failf "%s lost its dtd" name
      | Some subset ->
        let dtd = Dtd.parse subset in
        let violations = Validator.validate dtd doc.Types.root in
        if violations <> [] then
          Alcotest.failf "%s: %d violation(s), first: %s" name (List.length violations)
            (Format.asprintf "%a" Validator.pp_violation (List.hd violations)))
    [
      "paper", Extract_datagen.Paper_example.document ();
      "retail", Extract_datagen.Retail.generate Extract_datagen.Retail.default;
      "auction", Extract_datagen.Auction.generate Extract_datagen.Auction.default;
    ]

(* ------------------------------------------------------------------ *)
(* Stemmer *)

let test_stem_plurals () =
  check string "stores" "store" (Stemmer.stem "stores");
  check string "caresses" "caress" (Stemmer.stem "caresses");
  check string "ponies" "poni" (Stemmer.stem "ponies");
  check string "caress" "caress" (Stemmer.stem "caress");
  check string "cats" "cat" (Stemmer.stem "cats")

let test_stem_participles () =
  check string "fitting" "fit" (Stemmer.stem "fitting");
  check string "matted" "mat" (Stemmer.stem "matted");
  check string "agreed" "agree" (Stemmer.stem "agreed");
  check string "plastered" "plaster" (Stemmer.stem "plastered");
  check string "motoring" "motor" (Stemmer.stem "motoring");
  check string "sing" "sing" (Stemmer.stem "sing")

let test_stem_derivational () =
  check string "relational" "relat" (Stemmer.stem "relational");
  check string "rational" "rational" (Stemmer.stem "rational");
  check string "hopefulness" "hope" (Stemmer.stem "hopefulness");
  check string "goodness" "good" (Stemmer.stem "goodness")

let test_stem_short_words_safe () =
  check string "sky" "sky" (Stemmer.stem "sky");
  check string "as" "as" (Stemmer.stem "as");
  check string "is" "is" (Stemmer.stem "is")

let test_stem_idempotent_on_vocab () =
  (* stems of the dataset vocabulary are stable under re-stemming *)
  let vocab =
    Array.to_list Extract_datagen.Names.clothes_categories
    @ Array.to_list Extract_datagen.Names.genres
  in
  List.iter
    (fun w ->
      let once = Stemmer.stem (String.lowercase_ascii w) in
      check string (Printf.sprintf "stable %s" w) once (Stemmer.stem once))
    vocab

let test_stopwords () =
  check bool "the" true (Stemmer.is_stopword "the");
  check bool "of" true (Stemmer.is_stopword "of");
  check bool "retailer" false (Stemmer.is_stopword "retailer");
  check bool "normalize drops and stems" true
    (Stemmer.normalize_tokens [ "the"; "stores"; "of"; "texas" ] = [ "store"; "texa" ]
    || Stemmer.normalize_tokens [ "the"; "stores"; "of"; "texas" ] = [ "store"; "texas" ])

(* ------------------------------------------------------------------ *)
(* Corpus *)

let corpus () =
  let movie_db =
    Pipeline.build (Document.of_document (Extract_datagen.Movies.sized 15))
  in
  let retail_db =
    Pipeline.build
      (Document.of_document
         (Extract_datagen.Retail.generate
            { Extract_datagen.Retail.default with Extract_datagen.Retail.retailers = 2 }))
  in
  Corpus.of_list [ "movies", movie_db; "retail", retail_db ]

let test_corpus_names_and_find () =
  let c = corpus () in
  check bool "names sorted" true (Corpus.names c = [ "movies"; "retail" ]);
  check int "size" 2 (Corpus.size c);
  check bool "find hit" true (Corpus.find c "movies" <> None);
  check bool "find miss" true (Corpus.find c "nope" = None)

let test_corpus_add_replaces () =
  let c = corpus () in
  let db = Option.get (Corpus.find c "movies") in
  let c2 = Corpus.add c ~name:"movies" db in
  check int "still two" 2 (Corpus.size c2)

let test_corpus_run_merges () =
  let c = corpus () in
  (* "drama" only exists in movies; "store" only in retail *)
  let drama = Corpus.run ~bound:4 c "drama" in
  check bool "drama hits movies only" true
    (drama <> [] && List.for_all (fun h -> h.Corpus.source = "movies") drama);
  let store = Corpus.run ~bound:4 c "store" in
  check bool "store hits retail only" true
    (store <> [] && List.for_all (fun h -> h.Corpus.source = "retail") store)

let test_corpus_scores_sorted () =
  let c = corpus () in
  let hits = Corpus.run ~bound:4 c "drama movie" in
  let scores = List.map (fun h -> h.Corpus.score) hits in
  check bool "descending" true (List.sort (fun a b -> compare b a) scores = scores)

let test_corpus_limit () =
  let c = corpus () in
  check bool "limit respected" true (List.length (Corpus.run ~limit:3 c "movie") <= 3)

let test_corpus_empty () =
  check int "empty corpus, no hits" 0 (List.length (Corpus.run Corpus.empty "anything"))

let suites =
  [
    ( "xml.validator.models",
      [
        Alcotest.test_case "sequence" `Quick test_match_sequence;
        Alcotest.test_case "star/plus/opt" `Quick test_match_star_plus_opt;
        Alcotest.test_case "choice nesting" `Quick test_match_choice_nesting;
        Alcotest.test_case "paper schema" `Quick test_match_paper_schema;
        Alcotest.test_case "ambiguous model" `Quick test_match_ambiguous_model;
        Alcotest.test_case "empty/any/mixed" `Quick test_match_empty_any_mixed;
      ] );
    ( "xml.validator.documents",
      [
        Alcotest.test_case "valid" `Quick test_validate_ok;
        Alcotest.test_case "bad children" `Quick test_validate_bad_children;
        Alcotest.test_case "stray text" `Quick test_validate_text_in_element_content;
        Alcotest.test_case "pcdata children" `Quick test_validate_pcdata_with_children;
        Alcotest.test_case "strict mode" `Quick test_validate_strict_undeclared;
        Alcotest.test_case "generators validate" `Quick test_generators_validate_against_their_dtds;
      ] );
    ( "store.stemmer",
      [
        Alcotest.test_case "plurals" `Quick test_stem_plurals;
        Alcotest.test_case "participles" `Quick test_stem_participles;
        Alcotest.test_case "derivational" `Quick test_stem_derivational;
        Alcotest.test_case "short words" `Quick test_stem_short_words_safe;
        Alcotest.test_case "idempotent" `Quick test_stem_idempotent_on_vocab;
        Alcotest.test_case "stopwords" `Quick test_stopwords;
      ] );
    ( "snippet.corpus",
      [
        Alcotest.test_case "names/find" `Quick test_corpus_names_and_find;
        Alcotest.test_case "add replaces" `Quick test_corpus_add_replaces;
        Alcotest.test_case "merging" `Quick test_corpus_run_merges;
        Alcotest.test_case "scores sorted" `Quick test_corpus_scores_sorted;
        Alcotest.test_case "limit" `Quick test_corpus_limit;
        Alcotest.test_case "empty" `Quick test_corpus_empty;
      ] );
  ]
