(* Orthogonality of snippet generation and result generation (paper §3/§4:
   "eXtract can also be used on top of any XML keyword search engines"):
   the same query is executed under SLCA, ELCA and XSeek semantics and
   snippets are generated for each engine's results.

   Run with: dune exec examples/engines_scenario.exe *)

module Pipeline = Extract_snippet.Pipeline
module Engine = Extract_search.Engine
module Snippet_tree = Extract_snippet.Snippet_tree

let () =
  let doc = Extract_datagen.Auction.generate Extract_datagen.Auction.default in
  let db = Pipeline.build (Extract_store.Document.of_document doc) in
  let query = "vintage camera item" in
  Printf.printf "Query: %S\n" query;
  List.iter
    (fun semantics ->
      Printf.printf "\n=== engine: %s ===\n" (Engine.string_of_semantics semantics);
      let results = Pipeline.run ~semantics ~bound:6 ~limit:2 db query in
      Printf.printf "%d result(s), showing up to 2:\n\n" (List.length results);
      List.iter
        (fun (r : Pipeline.snippet_result) ->
          print_endline (Snippet_tree.render r.selection.snippet);
          Printf.printf "  (result root: %s, %d nodes)\n\n"
            (Extract_store.Document.tag_name
               (Extract_search.Result_tree.document r.result)
               (Extract_search.Result_tree.root r.result))
            (Extract_search.Result_tree.size r.result))
        results)
    Engine.all_semantics
