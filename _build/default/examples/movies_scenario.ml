(* The demo's "movies" scenario (paper §4): issue keyword queries against a
   movie database, view eXtract snippets next to what a text search engine
   (Google Desktop, which ignores XML structure) would show for the same
   results.

   Run with: dune exec examples/movies_scenario.exe *)

module Pipeline = Extract_snippet.Pipeline
module Snippet_tree = Extract_snippet.Snippet_tree
module Text_baseline = Extract_snippet.Text_baseline
module Query = Extract_search.Query

let bound = 6

let show_query db q =
  Printf.printf "====================================================\n";
  Printf.printf "Query: %S (size bound %d edges)\n\n" q bound;
  let results = Pipeline.run ~bound db q in
  Printf.printf "%d result(s)\n\n" (List.length results);
  let query = Query.of_string q in
  List.iteri
    (fun i (r : Pipeline.snippet_result) ->
      Printf.printf "--- result %d ---------------------------------\n" (i + 1);
      Printf.printf "eXtract snippet:\n%s\n\n" (Snippet_tree.render r.selection.snippet);
      let text =
        Text_baseline.generate
          ~window_tokens:(Text_baseline.window_for_bound bound)
          r.result query
      in
      Printf.printf "text-engine snippet (structure ignored):\n  %s\n\n"
        (Text_baseline.to_string text))
    (List.filteri (fun i _ -> i < 3) results)

let () =
  let doc = Extract_datagen.Movies.generate Extract_datagen.Movies.default in
  let db = Pipeline.build (Extract_store.Document.of_document doc) in
  show_query db "drama movie";
  show_query db "documentary meridian";
  show_query db "movie 1999"
