(* Quickstart: load an XML string, run a keyword query, print the snippet
   of each result. Run with: dune exec examples/quickstart.exe *)

let data =
  {|<library>
      <book><title>Structure and Interpretation</title><author>Abelson</author>
            <subject>programming</subject><year>1985</year></book>
      <book><title>The Art of Computer Programming</title><author>Knuth</author>
            <subject>algorithms</subject><year>1968</year></book>
      <book><title>Purely Functional Data Structures</title><author>Okasaki</author>
            <subject>algorithms</subject><year>1998</year></book>
    </library>|}

let () =
  (* Offline: parse, classify nodes (entity/attribute/connection), mine
     keys, build the inverted index. *)
  let db = Extract_snippet.Pipeline.of_xml_string data in
  (* Online: search + snippet generation within a 4-edge bound. *)
  let results = Extract_snippet.Pipeline.run ~bound:4 db "algorithms book" in
  Printf.printf "%d result(s) for \"algorithms book\"\n\n" (List.length results);
  List.iter
    (fun (r : Extract_snippet.Pipeline.snippet_result) ->
      print_endline (Extract_snippet.Snippet_tree.render r.selection.snippet);
      Printf.printf "  IList: %s\n\n" (Extract_snippet.Ilist.to_string r.ilist))
    results
