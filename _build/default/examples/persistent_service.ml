(* The demo's deployment story, end to end: build an indexed database once,
   persist it as a bundle, reload it in a "fresh server process", and
   answer an HTTP request against it — all the pieces the original Apache +
   PHP + C++ deployment needed, from the public API.

   Run with: dune exec examples/persistent_service.exe *)

module Pipeline = Extract_snippet.Pipeline
module Persist = Extract_store.Persist
module Corpus = Extract_snippet.Corpus
module Demo_server = Extract_server.Demo_server

let () =
  let bundle_path = Filename.temp_file "extract_movies" ".bundle" in

  (* 1. offline, once: generate + analyze + index + persist *)
  let db =
    Pipeline.build
      (Extract_store.Document.of_document (Extract_datagen.Movies.sized 40))
  in
  Pipeline.save bundle_path db;
  Printf.printf "persisted %s (%d bytes)\n" bundle_path
    (let ic = open_in_bin bundle_path in
     let n = in_channel_length ic in
     close_in ic;
     n);

  (* 2. "server restart": load the bundle (no XML parsing, no index
     rebuild) *)
  let reloaded = Pipeline.load bundle_path in
  Printf.printf "reloaded: %d nodes, %d index tokens\n"
    (Extract_store.Document.node_count (Pipeline.document reloaded))
    (Extract_store.Inverted_index.token_count (Pipeline.index reloaded));

  (* 3. serve one real HTTP request against it *)
  let server = Demo_server.create (Corpus.of_list [ "movies", reloaded ]) in
  let listening = Demo_server.listen ~port:0 in
  let port = Demo_server.bound_port listening in
  let client = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect client (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let request = "GET /search?data=movies&q=drama+movie&bound=6 HTTP/1.0\r\n\r\n" in
  ignore (Unix.write_substring client request 0 (String.length request));
  Demo_server.serve_once server listening;
  let buf = Bytes.create 65536 in
  let n = Unix.read client buf 0 65536 in
  let response = Bytes.sub_string buf 0 n in
  Unix.close client;
  Unix.close listening;
  Sys.remove bundle_path;

  (match String.index_opt response '\r' with
  | Some i -> Printf.printf "HTTP response: %s\n" (String.sub response 0 i)
  | None -> ());
  let has_snippets =
    let needle = "class=\"snippet\"" in
    let rec find i =
      i + String.length needle <= String.length response
      && (String.sub response i (String.length needle) = needle || find (i + 1))
    in
    find 0
  in
  Printf.printf "page contains snippets: %b\n" has_snippets
