(* The paper's running example, end to end:

   - Figure 1: the query result of "Texas apparel retailer" and its value
     statistics;
   - Section 2.3: the dominance scores computed by hand;
   - Figure 3: the IList;
   - Figure 2: a snippet of the result.

   Run with: dune exec examples/retail_scenario.exe *)

module Pipeline = Extract_snippet.Pipeline
module Feature = Extract_snippet.Feature
module Ilist = Extract_snippet.Ilist
module Selector = Extract_snippet.Selector
module Snippet_tree = Extract_snippet.Snippet_tree

let () =
  let doc = Extract_datagen.Paper_example.document () in
  let db = Pipeline.build (Extract_store.Document.of_document doc) in
  let query = Extract_datagen.Paper_example.query in
  Printf.printf "Query: %S\n\n" query;

  let results = Pipeline.run ~bound:12 db query in
  Printf.printf "Results: %d\n\n" (List.length results);
  List.iter
    (fun (r : Pipeline.snippet_result) ->
      let result = r.result in
      Printf.printf "Query result: %d nodes (%d elements)\n"
        (Extract_search.Result_tree.size result)
        (Extract_search.Result_tree.element_size result);

      (* Section 2.3: dominance scores *)
      let analysis = Feature.analyze (Pipeline.kinds db) result in
      print_endline "Dominant features (cf. paper section 2.3):";
      List.iter
        (fun ((f : Feature.t), (s : Feature.stats)) ->
          Printf.printf "  %-24s DS = %.2f  (N=%d, N(e,a)=%d, D=%d)\n"
            (Printf.sprintf "(%s, %s, %s)" f.entity f.attribute f.value)
            s.score s.occurrences s.type_total s.domain_size)
        (Feature.dominant analysis);
      print_newline ();

      (* Figure 3: the IList *)
      Printf.printf "IList (cf. paper Figure 3):\n  %s\n\n" (Ilist.to_string r.ilist);

      (* Figure 2: the snippet *)
      Printf.printf "Snippet within %d edges (cf. paper Figure 2):\n"
        r.selection.Selector.bound;
      print_endline (Snippet_tree.render r.selection.snippet);
      Printf.printf "\nCovered %d/%d IList items, %d edges used.\n"
        (Selector.covered_count r.selection)
        (Ilist.length r.ilist)
        (Snippet_tree.edge_count r.selection.snippet))
    results
