(* Domain-safety analyzer: the headline pass of extract-lint.

   The server runs a pool of OCaml 5 domains (Demo_server), the pipeline
   fans snippets out with Domain.spawn, and the load harness drives real
   sockets from threads. Any top-level mutable state reachable from that
   code is shared across domains, and the OCaml memory model makes
   unguarded access a data race, not just a stale read.

   The pass works in three layers:

   1. Catalogue. Every scanned module is classified:
      - a *domain root* spawns concurrency (contains Domain.spawn or
        Thread.create);
      - a *concurrency-bearing* module either uses a synchronization
        primitive (Mutex/Condition/Atomic/Domain.DLS) or is on the baked
        roster of types whose locking story lives at the use site (Lru,
        Snippet_cache);
      - a *domain-reachable* module is referenced, transitively, from a
        root. The analysis is lexical: references are the uppercase
        segments of qualified paths resolved against scanned file names.
      The catalogue of shared mutable state in those modules is emitted
      as doc/CONCURRENCY.md (--concurrency-doc).

   2. Discipline (rule domain-safety). Every top-level mutable binding
      (ref, Hashtbl, Queue, Buffer, Bytes, array, lazy) in a
      domain-reachable or bearing module, and every mutable/container
      record field in a bearing module, must be one of:
        (a) an Atomic.t or a Domain.DLS key (recognized structurally);
        (b) annotated [(* guarded-by: <mutex> *)] where <mutex> resolves
            to a real Mutex.create binding or [: Mutex.t] field (rule
            stale-annotation checks the resolution);
        (c) annotated [(* domain-local *)], [(* init-only *)] or
            [(* read-only *)] with a justification.
      Fields of internally synchronized types (Sharded_lru.t,
      Snippet_cache.t, Shard_set.t) are accepted as safe. Annotations cover their own
      line and the next, so they can trail the site or sit above it; a
      type-level annotation covers every field of the declaration.

   3. Lock hygiene (rules lock-pairing, lock-raise). Within each
      top-level definition, a Mutex.lock with no matching unlock (or
      vice versa) is flagged, and so is any raise/failwith/invalid_arg
      issued while the linear scan says a lock is held — the sanctioned
      shapes are Mutex.protect and the
      [match f () with x -> unlock; x | exception e -> unlock; raise e]
      pattern, both of which pass because every path unlocks before
      raising. *)

open Lint_rule
module S = Lint_source

(* ------------------------------------------------------------------ *)
(* Structure items: top-level chunks keyed by their column-0 keyword    *)

let structure_keywords =
  [ "let"; "type"; "module"; "open"; "include"; "exception"; "external"; "val"; "and" ]

type item = {
  kind : string; (* "let" | "type" | ... with "and" resolved to its chain *)
  start : int; (* token index of the keyword *)
  stop : int; (* token index one past the item *)
}

let structure_items (tokens : S.token array) =
  let n = Array.length tokens in
  let boundaries = ref [] in
  for k = n - 1 downto 0 do
    if tokens.(k).S.col = 0 && List.mem tokens.(k).S.text structure_keywords then
      boundaries := k :: !boundaries
  done;
  let rec build last_kind = function
    | [] -> []
    | k :: rest ->
      let kw = tokens.(k).S.text in
      let kind = if kw = "and" then last_kind else kw in
      let stop = match rest with [] -> n | k' :: _ -> k' in
      { kind; start = k; stop } :: build kind rest
  in
  build "" !boundaries

(* ------------------------------------------------------------------ *)
(* Token classification helpers                                        *)

let keywords_never_args =
  [
    "in"; "then"; "else"; "done"; "with"; "do"; "begin"; "end"; "match"; "try"; "let"; "fun";
    "function"; "if"; "for"; "while"; "and"; "rec";
  ]

let is_lower_ident text =
  text <> ""
  && (text.[0] = '_' || (text.[0] >= 'a' && text.[0] <= 'z'))
  && (not (String.contains text '.'))
  && not (List.mem text keywords_never_args)

let type_matches candidates tok =
  List.exists (fun c -> tok = c || Filename.check_suffix tok ("." ^ c)) candidates

let spawn_tokens = [ "Domain.spawn"; "Thread.create" ]

let sync_prefixes = [ "Mutex."; "Condition."; "Atomic."; "Domain.DLS" ]

(* modules whose instances are mutable but whose locking story lives at
   the use site (see lru.mli / sharded_lru.mli): always catalogued *)
let bearing_roster = [ "Lru"; "Snippet_cache" ]

let safe_field_types = [ "Atomic.t"; "Domain.DLS.key" ]

(* Shard_set.t is on the roster because its synchronization story is
   internal to the module: the shard array is built once and never
   mutated, and the query fan-out spawns/joins its domains inside
   [Shard_set.run] — holders of a shard set need no locking of their
   own. *)
let internal_sync_types = [ "Sharded_lru.t"; "Snippet_cache.t"; "Shard_set.t" ]

let container_field_types =
  [ "ref"; "array"; "bytes"; "Hashtbl.t"; "Queue.t"; "Buffer.t"; "Bytes.t"; "Stack.t"; "Lru.t" ]

(* creation expressions, by the token that builds them *)
let container_creators =
  [
    "ref", "ref";
    "Hashtbl.create", "Hashtbl";
    "Queue.create", "Queue";
    "Buffer.create", "Buffer";
    "Bytes.create", "Bytes";
    "Bytes.make", "Bytes";
    "Array.make", "array";
    "Array.init", "array";
    "Array.create_float", "array";
    "[|", "array literal";
    "Stack.create", "Stack";
    "lazy", "lazy";
  ]

let raisers = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]

(* ------------------------------------------------------------------ *)
(* Per-file scans                                                      *)

type discipline =
  | Auto of string (* structurally safe: "Atomic", "Domain.DLS" *)
  | Guard of string (* it IS a mutex/condition: what others guard with *)
  | Guarded of string
  | Local
  | Init
  | ReadOnly
  | Internal of string (* internally synchronized abstraction *)
  | Unsafe of string (* no discipline established; payload = remedy hint *)

type site = {
  s_path : string;
  s_module : string;
  s_line : int;
  s_name : string;
  s_kind : string;
  (* lines where a discipline annotation is accepted for this site *)
  s_ann_lines : int list;
  s_disc : discipline;
}

let site fu ~line ~name ~kind ~ann_lines ~disc =
  {
    s_path = fu.path;
    s_module = S.module_name fu.path;
    s_line = line;
    s_name = name;
    s_kind = kind;
    s_ann_lines = ann_lines;
    s_disc = disc;
  }

let find_eq tokens s e =
  (* first "=" at bracket depth 0 in [s, e) *)
  let depth = ref 0 in
  let found = ref (-1) in
  let k = ref s in
  while !found < 0 && !k < e do
    (match tokens.(!k).S.text with
    | "(" | "[" | "{" | "[|" -> incr depth
    | ")" | "]" | "}" | "|]" -> decr depth
    | "=" when !depth = 0 -> found := !k
    | _ -> ());
    incr k
  done;
  !found

(* top-level mutable-value sites of one file; also returns the names of
   mutexes defined here (for guarded-by resolution) *)
let scan_bindings (fu : file_unit) =
  let tokens = fu.lexed.S.tokens in
  let guards = ref [] in
  let sites = ref [] in
  List.iter
    (fun it ->
      if it.kind = "let" then begin
        let idx = ref (it.start + 1) in
        if !idx < it.stop && tokens.(!idx).S.text = "rec" then incr idx;
        if !idx < it.stop then begin
          let name =
            if
              !idx + 1 < it.stop
              && tokens.(!idx).S.text = "("
              && tokens.(!idx + 1).S.text = ")"
            then begin
              idx := !idx + 2;
              "()"
            end
            else begin
              let t = tokens.(!idx).S.text in
              incr idx;
              t
            end
          in
          if name = "()" || (name <> "" && S.is_ident_start name.[0]) then begin
            let eq = find_eq tokens !idx it.stop in
            if eq >= 0 then begin
              let is_value = eq = !idx || tokens.(!idx).S.text = ":" in
              if is_value then begin
                (* static region: stop at the first closure *)
                let stop = ref (eq + 1) in
                while
                  !stop < it.stop
                  && tokens.(!stop).S.text <> "fun"
                  && tokens.(!stop).S.text <> "function"
                do
                  incr stop
                done;
                let has text =
                  let found = ref false in
                  for k = eq + 1 to !stop - 1 do
                    if tokens.(k).S.text = text then found := true
                  done;
                  !found
                in
                let line = tokens.(it.start).S.line in
                let add kind disc =
                  sites := site fu ~line ~name ~kind ~ann_lines:[ line ] ~disc :: !sites
                in
                if has "Domain.DLS.new_key" then add "Domain.DLS key" (Auto "Domain.DLS")
                else if has "Atomic.make" then add "Atomic" (Auto "Atomic")
                else begin
                  let container =
                    let found = ref None in
                    for k = !stop - 1 downto eq + 1 do
                      match List.assoc_opt tokens.(k).S.text container_creators with
                      | Some kind -> found := Some kind
                      | None -> ()
                    done;
                    !found
                  in
                  match container with
                  | Some kind ->
                    add kind
                      (Unsafe
                         "use Atomic/Domain.DLS, or annotate (* guarded-by: <mutex> *), (* \
                          domain-local *), (* init-only *) or (* read-only *) with a \
                          justification")
                  | None ->
                    if has "Mutex.create" then begin
                      guards := name :: !guards;
                      add "Mutex (guard)" (Guard "mutex")
                    end
                    else if has "Condition.create" then add "Condition" (Guard "condition")
                end
              end
            end
          end
        end
      end)
    (structure_items tokens);
  (!sites, !guards)

(* record fields of one file's top-level type declarations; also returns
   the names of [: Mutex.t] fields (guards) *)
let scan_fields (fu : file_unit) =
  let tokens = fu.lexed.S.tokens in
  let guards = ref [] in
  let sites = ref [] in
  List.iter
    (fun it ->
      if it.kind = "type" then begin
        let eq = find_eq tokens (it.start + 1) it.stop in
        if eq >= 0 then begin
          (* type name: last plain ident before the "=" *)
          let tname = ref "?" in
          for k = it.start + 1 to eq - 1 do
            if is_lower_ident tokens.(k).S.text then tname := tokens.(k).S.text
          done;
          let decl_line = tokens.(it.start).S.line in
          (* walk the body; each "{" opens a record (incl. inline ones) *)
          let k = ref (eq + 1) in
          while !k < it.stop do
            if tokens.(!k).S.text = "{" then begin
              incr k;
              let in_record = ref true in
              while !in_record && !k < it.stop do
                (* one field: [mutable]? name ":" type-tokens (";"|"}") *)
                let mutable_ = !k < it.stop && tokens.(!k).S.text = "mutable" in
                if mutable_ then incr k;
                if !k < it.stop && is_lower_ident tokens.(!k).S.text then begin
                  let fname = tokens.(!k).S.text in
                  let fline = tokens.(!k).S.line in
                  incr k;
                  if !k < it.stop && tokens.(!k).S.text = ":" then begin
                    incr k;
                    let ftype = ref [] in
                    let depth = ref 0 in
                    let stop_field = ref false in
                    while (not !stop_field) && !k < it.stop do
                      (match tokens.(!k).S.text with
                      | "(" | "[" | "[|" ->
                        incr depth;
                        ftype := tokens.(!k).S.text :: !ftype
                      | ")" | "]" | "|]" ->
                        decr depth;
                        ftype := tokens.(!k).S.text :: !ftype
                      | ";" when !depth = 0 -> stop_field := true
                      | "}" when !depth = 0 ->
                        stop_field := true;
                        in_record := false
                      | t -> ftype := t :: !ftype);
                      incr k
                    done;
                    let ftype = List.rev !ftype in
                    let has_type cands = List.exists (type_matches cands) ftype in
                    let add kind disc =
                      sites :=
                        site fu ~line:fline
                          ~name:(Printf.sprintf "%s.%s" !tname fname)
                          ~kind
                          ~ann_lines:[ fline; decl_line ]
                          ~disc
                        :: !sites
                    in
                    if has_type [ "Mutex.t" ] then begin
                      guards := fname :: !guards;
                      add "Mutex.t field (guard)" (Guard "mutex")
                    end
                    else if has_type [ "Condition.t" ] then
                      add "Condition.t field" (Guard "condition")
                    else if has_type safe_field_types then
                      add
                        (if mutable_ then "mutable Atomic field" else "Atomic/DLS field")
                        (Auto "Atomic")
                    else begin
                      match
                        List.find_opt (fun c -> has_type [ c ]) internal_sync_types
                      with
                      | Some t -> add (t ^ " field") (Internal t)
                      | None ->
                        if mutable_ || has_type container_field_types then
                          add
                            (if mutable_ then "mutable field" else "container field")
                            (Unsafe
                               "annotate the field or its type with (* guarded-by: <mutex> \
                                *) / (* domain-local *) / (* init-only *) / (* read-only \
                                *), or use Atomic.t")
                    end
                  end
                end
                else if !k < it.stop then begin
                  if tokens.(!k).S.text = "}" then in_record := false;
                  incr k
                end
                else in_record := false
              done
            end
            else incr k
          done
        end
      end)
    (structure_items tokens);
  (!sites, !guards)

(* ------------------------------------------------------------------ *)
(* Whole-repo analysis                                                 *)

type analysis = {
  a_roots : (string * int) list; (* path, line of first spawn *)
  a_bearing : string list; (* D: sync primitives or roster *)
  a_reachable : string list; (* R: referenced (transitively) from a root *)
  a_sites : site list; (* catalogue, discipline resolved *)
  a_guards : (string, string list) Hashtbl.t; (* path -> mutex names *)
  a_modules : (string, string list) Hashtbl.t; (* Module -> paths *)
}

let token_module_segments text =
  if text <> "" && S.is_upper text.[0] then
    List.filter (fun seg -> seg <> "" && S.is_upper seg.[0]) (String.split_on_char '.' text)
  else []

let analyze ctx =
  let mls = ctx.mls in
  let modules = Hashtbl.create 64 in
  List.iter
    (fun fu ->
      let m = S.module_name fu.path in
      let existing = Option.value ~default:[] (Hashtbl.find_opt modules m) in
      Hashtbl.replace modules m (fu.path :: existing))
    mls;
  let first_spawn fu =
    Array.fold_left
      (fun acc (tok : S.token) ->
        if acc < 0 && List.mem tok.S.text spawn_tokens then tok.S.line else acc)
      (-1) fu.lexed.S.tokens
  in
  let roots =
    List.filter_map
      (fun fu ->
        let l = first_spawn fu in
        if l >= 0 then Some (fu.path, l) else None)
      mls
  in
  let has_sync fu =
    Array.exists
      (fun (tok : S.token) ->
        List.mem tok.S.text spawn_tokens
        || List.exists
             (fun p ->
               String.length tok.S.text >= String.length p
               && String.sub tok.S.text 0 (String.length p) = p)
             sync_prefixes)
      fu.lexed.S.tokens
  in
  let bearing =
    List.filter_map
      (fun fu ->
        if has_sync fu || List.mem (S.module_name fu.path) bearing_roster then Some fu.path
        else None)
      mls
  in
  (* reachability: BFS over lexical module references from the roots *)
  let refs fu =
    let out = Hashtbl.create 16 in
    Array.iter
      (fun (tok : S.token) ->
        List.iter
          (fun seg ->
            match Hashtbl.find_opt modules seg with
            | Some paths -> List.iter (fun p -> if p <> fu.path then Hashtbl.replace out p ()) paths
            | None -> ())
          (token_module_segments tok.S.text))
      fu.lexed.S.tokens;
    Hashtbl.fold (fun p () acc -> p :: acc) out []
  in
  let by_path = Hashtbl.create 64 in
  List.iter (fun fu -> Hashtbl.replace by_path fu.path fu) mls;
  let reachable = Hashtbl.create 64 in
  let rec visit path =
    if not (Hashtbl.mem reachable path) then begin
      Hashtbl.replace reachable path ();
      match Hashtbl.find_opt by_path path with
      | Some fu -> List.iter visit (refs fu)
      | None -> ()
    end
  in
  List.iter (fun (p, _) -> visit p) roots;
  let reachable_paths = List.filter (fun fu -> Hashtbl.mem reachable fu.path) mls in
  let enforced = Hashtbl.create 64 in
  List.iter (fun fu -> Hashtbl.replace enforced fu.path ()) reachable_paths;
  List.iter (fun p -> Hashtbl.replace enforced p ()) bearing;
  let bearing_set = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace bearing_set p ()) bearing;
  (* guards and sites *)
  let guards = Hashtbl.create 32 in
  let raw_sites = ref [] in
  List.iter
    (fun fu ->
      let bsites, bguards = scan_bindings fu in
      let fsites, fguards = scan_fields fu in
      Hashtbl.replace guards fu.path (bguards @ fguards);
      (* top-level bindings count wherever reachable or bearing; fields
         only in bearing modules (instances of non-bearing modules' types
         are per-query values, confined by construction) *)
      if Hashtbl.mem enforced fu.path then raw_sites := bsites @ !raw_sites;
      if Hashtbl.mem bearing_set fu.path then raw_sites := fsites @ !raw_sites)
    mls;
  (* resolve annotations into disciplines *)
  let resolved =
    List.map
      (fun s ->
        match s.s_disc, Hashtbl.find_opt by_path s.s_path with
        | Unsafe _, Some fu -> (
          let anns = List.concat_map (S.annotations_at fu.lexed) s.s_ann_lines in
          match anns with
          | S.Guarded_by g :: _ -> { s with s_disc = Guarded g }
          | S.Domain_local :: _ -> { s with s_disc = Local }
          | S.Init_only :: _ -> { s with s_disc = Init }
          | S.Read_only :: _ -> { s with s_disc = ReadOnly }
          | [] -> s)
        | _ -> s)
      !raw_sites
  in
  let sites =
    List.sort
      (fun a b ->
        let c = String.compare a.s_path b.s_path in
        if c <> 0 then c else Int.compare a.s_line b.s_line)
      resolved
  in
  {
    a_roots = List.sort (fun (a, _) (b, _) -> String.compare a b) roots;
    a_bearing = List.sort String.compare bearing;
    a_reachable =
      List.sort String.compare (List.map (fun fu -> fu.path) reachable_paths);
    a_sites = sites;
    a_guards = guards;
    a_modules = modules;
  }

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)

let by_path_tbl ctx =
  let t = Hashtbl.create 64 in
  List.iter (fun fu -> Hashtbl.replace t fu.path fu) ctx.mls;
  t

let domain_safety =
  {
    name = "domain-safety";
    synopsis = "shared mutable state without an established concurrency discipline";
    doc =
      "Builds a repo-wide catalogue of shared mutable state: top-level\n\
       refs/Hashtbls/Queues/Buffers/arrays/lazies in modules reachable\n\
       from Domain.spawn / Thread.create sites, and mutable or container\n\
       record fields in concurrency-bearing modules (those using\n\
       Mutex/Condition/Atomic/Domain.DLS, plus Lru and Snippet_cache,\n\
       whose locking story lives at the use site).\n\n\
       Every catalogued site must have an established discipline: be an\n\
       Atomic.t or Domain.DLS key (recognized structurally), or carry one\n\
       of the annotations\n\n\
      \  (* guarded-by: <mutex> *)   mutated only while holding <mutex>\n\
      \  (* domain-local *)          value never crosses a domain boundary\n\
      \  (* init-only *)             written before any domain is spawned\n\
      \  (* read-only *)             created once, never mutated after\n\n\
       on the site's line, the line above, or (for fields) the type\n\
       declaration line, which covers every field of the record. A\n\
       trailing justification after the keyword is encouraged and\n\
       ignored. Fields of internally synchronized types (Sharded_lru.t,\n\
       Snippet_cache.t, Shard_set.t) are safe as-is. The catalogue is\n\
       rendered by\n\
       --concurrency-doc and checked in as doc/CONCURRENCY.md; the @lint\n\
       alias fails on drift (regenerate with dune promote).";
    run =
      (fun ctx ->
        let a = analyze ctx in
        let by_path = by_path_tbl ctx in
        List.concat_map
          (fun s ->
            match s.s_disc, Hashtbl.find_opt by_path s.s_path with
            | Unsafe remedy, Some fu ->
              let acc, add = collector fu in
              add s.s_line "domain-safety"
                (Printf.sprintf "shared mutable state: %s `%s` has no concurrency discipline; %s"
                   s.s_kind s.s_name remedy);
              !acc
            | _ -> [])
          a.a_sites);
  }

(* both lock rules in one linear scan per top-level definition *)
let lock_scan (fu : file_unit) =
  let tokens = fu.lexed.S.tokens in
  let acc, add = collector fu in
  let n = Array.length tokens in
  let lock_key k =
    (* join the same-line lowercase path after Mutex.lock: "t" "lock" -> t.lock *)
    let parts = ref [] in
    let j = ref (k + 1) in
    while
      !j < n
      && tokens.(!j).S.line = tokens.(k).S.line
      && is_lower_ident tokens.(!j).S.text
    do
      parts := tokens.(!j).S.text :: !parts;
      incr j
    done;
    match List.rev !parts with [] -> "<expr>" | parts -> String.concat "." parts
  in
  List.iter
    (fun it ->
      let locks = Hashtbl.create 4 in
      let unlocks = Hashtbl.create 4 in
      let held = Hashtbl.create 4 in
      let held_total = ref 0 in
      let record tbl key line =
        match Hashtbl.find_opt tbl key with
        | Some (c, l0) -> Hashtbl.replace tbl key (c + 1, l0)
        | None -> Hashtbl.replace tbl key (1, line)
      in
      for k = it.start to it.stop - 1 do
        let tok = tokens.(k) in
        match tok.S.text with
        | "Mutex.lock" ->
          let key = lock_key k in
          record locks key tok.S.line;
          Hashtbl.replace held key (Option.value ~default:0 (Hashtbl.find_opt held key) + 1);
          incr held_total
        | "Mutex.unlock" ->
          let key = lock_key k in
          record unlocks key tok.S.line;
          let h = Option.value ~default:0 (Hashtbl.find_opt held key) in
          if h > 0 then begin
            Hashtbl.replace held key (h - 1);
            decr held_total
          end
        | t when List.mem t raisers && !held_total > 0 ->
          let held_keys =
            Hashtbl.fold (fun key c ks -> if c > 0 then key :: ks else ks) held []
            |> List.sort String.compare |> String.concat ", "
          in
          add tok.S.line "lock-raise"
            (Printf.sprintf
               "%s while holding %s; unlock in an exception branch (match ... | exception e -> \
                unlock; raise e) or use Mutex.protect"
               t held_keys)
        | _ -> ()
      done;
      Hashtbl.iter
        (fun key (_, line) ->
          if not (Hashtbl.mem unlocks key) then
            add line "lock-pairing"
              (Printf.sprintf
                 "Mutex.lock %s without a matching Mutex.unlock in this definition (did you \
                  mean Mutex.protect?)"
                 key))
        locks;
      Hashtbl.iter
        (fun key (_, line) ->
          if not (Hashtbl.mem locks key) then
            add line "lock-pairing"
              (Printf.sprintf "Mutex.unlock %s without a matching Mutex.lock in this definition"
                 key))
        unlocks)
    (structure_items tokens);
  !acc

let run_lock_rule rule_name ctx =
  List.concat_map
    (fun fu -> List.filter (fun v -> v.rule = rule_name) (lock_scan fu))
    ctx.mls

let lock_pairing =
  {
    name = "lock-pairing";
    synopsis = "Mutex.lock/unlock without its counterpart in the same definition";
    doc =
      "Within each top-level definition, every mutex that is locked must\n\
       also be unlocked (and vice versa). The canonical shape\n\n\
      \  Mutex.lock t.lock;\n\
      \  match f () with\n\
      \  | v -> Mutex.unlock t.lock; v\n\
      \  | exception e -> Mutex.unlock t.lock; raise e\n\n\
       passes (one lock, two unlocks: every path unlocks). A lock with\n\
       zero unlocks in the definition leaks the mutex on every path;\n\
       prefer Mutex.protect when the critical section is a simple thunk.\n\
       Keys are matched lexically on the argument expression, so lock and\n\
       unlock must name the mutex the same way.";
    run = run_lock_rule "lock-pairing";
  }

let lock_raise =
  {
    name = "lock-raise";
    synopsis = "raise/failwith/invalid_arg while a mutex is held";
    doc =
      "A raise executed between Mutex.lock and Mutex.unlock leaks the\n\
       lock: every later locker deadlocks. The analysis is a linear token\n\
       scan over the definition, so the sanctioned exception-branch shape\n\
       (unlock before the re-raise) passes, and code that raises\n\
       mid-section is flagged. Wrap the critical section in\n\
       Mutex.protect, or unlock in an [| exception e ->] branch first.";
    run = run_lock_rule "lock-raise";
  }

let stale_annotation =
  {
    name = "stale-annotation";
    synopsis = "guarded-by annotation that names no known mutex";
    doc =
      "Every (* guarded-by: <mutex> *) annotation must resolve: <mutex>\n\
       is either a name defined in the same file (a top-level Mutex.create\n\
       binding or a [: Mutex.t] record field), or a qualified\n\
       Module.name resolved against the scanned tree (e.g.\n\
       Sharded_lru.lock). An annotation that resolves to nothing is worse\n\
       than none at all — it documents a guarantee nobody enforces —\n\
       so it is an error, not a warning.";
    run =
      (fun ctx ->
        let a = analyze ctx in
        List.concat_map
          (fun fu ->
            let acc, add = collector fu in
            List.iter
              (fun (line, ann) ->
                match ann with
                | S.Guarded_by "" ->
                  add line "stale-annotation" "guarded-by annotation without a mutex name"
                | S.Guarded_by g -> (
                  let name, module_seg =
                    match List.rev (String.split_on_char '.' g) with
                    | last :: [] -> last, None
                    | last :: m :: _ -> last, Some m
                    | [] -> g, None
                  in
                  let candidate_paths =
                    match module_seg with
                    | None -> [ fu.path ]
                    | Some m -> Option.value ~default:[] (Hashtbl.find_opt a.a_modules m)
                  in
                  match candidate_paths with
                  | [] ->
                    add line "stale-annotation"
                      (Printf.sprintf "guarded-by: %s refers to a module outside the scanned tree"
                         g)
                  | paths ->
                    let resolves =
                      List.exists
                        (fun p ->
                          List.mem name
                            (Option.value ~default:[] (Hashtbl.find_opt a.a_guards p)))
                        paths
                    in
                    if not resolves then
                      add line "stale-annotation"
                        (Printf.sprintf
                           "stale guarded-by: no mutex named `%s` (expected a top-level \
                            Mutex.create binding or a `: Mutex.t` field in %s)"
                           g
                           (String.concat ", " paths)))
                | S.Domain_local | S.Init_only | S.Read_only -> ())
              fu.lexed.S.annotation_sites;
            !acc)
          ctx.mls);
  }

(* ------------------------------------------------------------------ *)
(* doc/CONCURRENCY.md                                                  *)

let describe_discipline = function
  | Auto what -> Printf.sprintf "`%s` (structural)" what
  | Guard what -> Printf.sprintf "guard (%s)" what
  | Guarded g -> Printf.sprintf "guarded by `%s`" g
  | Local -> "domain-local"
  | Init -> "init-only"
  | ReadOnly -> "read-only"
  | Internal t -> Printf.sprintf "internally synchronized (`%s`)" t
  | Unsafe _ -> "**UNSAFE** (no discipline)"

let concurrency_doc ctx =
  let a = analyze ctx in
  let buf = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  p "# Concurrency discipline — shared-state catalogue\n\n";
  p
    "Generated by `extract-lint --concurrency-doc` (the domain-safety\n\
     analyzer); `dune build @lint` fails if this file drifts from the\n\
     source tree. Regenerate with `dune build @lint` + `dune promote`.\n\
     Rule semantics and the annotation grammar: DESIGN.md §13, `extract-lint\n\
     --explain-rule domain-safety`.\n\n";
  p "## Domain roots\n\n";
  p "Modules that spawn concurrency (`Domain.spawn` / `Thread.create`):\n\n";
  List.iter (fun (path, line) -> p "- `%s` (first spawn at line %d)\n" path line) a.a_roots;
  p "\n## Concurrency-bearing modules\n\n";
  p
    "Modules using a synchronization primitive (Mutex/Condition/Atomic/\n\
     Domain.DLS) or on the analyzer's roster of use-site-locked types;\n\
     their mutable record fields are catalogued below. %d modules are\n\
     lexically reachable from the roots and have their top-level state\n\
     catalogued too.\n\n"
    (List.length a.a_reachable);
  List.iter (fun path -> p "- `%s`\n" path) a.a_bearing;
  p "\n## Shared-state catalogue\n\n";
  p "| Module | Site | Kind | Discipline | Location |\n";
  p "|---|---|---|---|---|\n";
  List.iter
    (fun s ->
      p "| %s | `%s` | %s | %s | %s:%d |\n" s.s_module s.s_name s.s_kind
        (describe_discipline s.s_disc)
        s.s_path s.s_line)
    a.a_sites;
  p "\n";
  let unsafe = List.filter (fun s -> match s.s_disc with Unsafe _ -> true | _ -> false) a.a_sites in
  if unsafe = [] then
    p "All %d catalogued sites have an established discipline.\n" (List.length a.a_sites)
  else p "**%d of %d sites have no discipline** — `dune build @lint` fails.\n"
      (List.length unsafe) (List.length a.a_sites);
  Buffer.contents buf
