(* Rule registry plumbing for extract-lint: the violation type shared by
   every pass, the per-rule record (name, one-line synopsis, long
   [--explain-rule] doc, runner), and the text/JSON renderers. *)

type violation = {
  file : string;
  vline : int;
  rule : string;
  message : string;
}

type file_unit = {
  path : string;
  lexed : Lint_source.lexed;
}

(* Everything a rule may look at. Files are lexed once, up front. *)
type ctx = {
  mls : file_unit list;
  mlis : file_unit list;
  files_scanned : int;
  (* exception names declared in some scanned .mli (plus the sanctioned
     stdlib ones) — the raise-discipline registry *)
  declared : (string, unit) Hashtbl.t;
}

type rule = {
  name : string;
  synopsis : string; (* one line, for --list-rules *)
  doc : string; (* multi-paragraph, for --explain-rule *)
  run : ctx -> violation list;
}

(* Build a suppression-aware accumulator for one file. *)
let collector (fu : file_unit) =
  let acc = ref [] in
  let add line rule message =
    let suppressed_here =
      Option.value ~default:[] (Hashtbl.find_opt fu.lexed.suppressed line)
    in
    if not (List.mem rule suppressed_here) then
      acc := { file = fu.path; vline = line; rule; message } :: !acc
  in
  (acc, add)

let compare_violations a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.vline b.vline in
    if c <> 0 then c else String.compare a.rule b.rule

let sort violations = List.sort compare_violations violations

(* ------------------------------------------------------------------ *)
(* Output                                                              *)

let render_text ~files_scanned violations =
  List.iter
    (fun v -> Printf.printf "%s:%d: [%s] %s\n" v.file v.vline v.rule v.message)
    violations;
  if violations <> [] then
    Printf.printf "%d violation(s) in %d file(s) scanned\n" (List.length violations)
      files_scanned

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Stable machine-readable output: one object per violation, sorted the
   same way as the text render. Consumers may rely on the field set
   {file, line, rule, message} and on [version] for future evolution. *)
let render_json ~files_scanned violations =
  Printf.printf "{\n  \"version\": 1,\n  \"files_scanned\": %d,\n  \"violations\": [" files_scanned;
  List.iteri
    (fun k v ->
      Printf.printf "%s\n    { \"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", \"message\": \"%s\" }"
        (if k = 0 then "" else ",")
        (json_escape v.file) v.vline (json_escape v.rule) (json_escape v.message))
    violations;
  if violations = [] then print_string "],\n" else print_string "\n  ],\n";
  Printf.printf "  \"total\": %d\n}\n" (List.length violations)
