(* Lexing and file access for extract-lint.

   The analysis is lexical but OCaml-aware: comments (nested), string
   literals (including [{id|...|id}] quoted strings) and character
   literals are skipped, and qualified paths ([Hashtbl.find_opt]) are
   lexed as single tokens so they never collide with their partial
   cousins. Tokens carry their column so rules can recognise top-level
   structure items (column 0 [let] / [type] / ...), and a small set of
   punctuation tokens ([= : ; { } | [ ] ( ) -> <- := [| |]]) is kept so
   the domain-safety pass can parse record fields and binding heads. *)

type token = {
  line : int;
  col : int; (* 0-based column of the token's first character *)
  text : string;
}

(* Concurrency-discipline annotations, parsed out of ordinary comments.
   The grammar is first-word keyed so prose never matches by accident:
     (* guarded-by: lock *)        mutation happens under that mutex
     (* domain-local *)            value never crosses a domain boundary
     (* init-only *)               written before any domain is spawned
     (* read-only *)               created once, never mutated after
   A trailing free-form justification after the keyword is encouraged
   and ignored by the parser. *)
type annotation =
  | Guarded_by of string
  | Domain_local
  | Init_only
  | Read_only

type lexed = {
  tokens : token array;
  (* line -> rules suppressed on that line (from a [(* lint: allow ... *)]
     comment on the same line or the line above) *)
  suppressed : (int, string list) Hashtbl.t;
  (* line -> discipline annotations attached to that line (an annotation
     comment covers its own line and the next line, so it can trail the
     annotated site or sit on its own line above it) *)
  annotations : (int, annotation list) Hashtbl.t;
  (* every annotation with the line of its comment, for staleness checks *)
  annotation_sites : (int * annotation) list;
}

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_upper c = c >= 'A' && c <= 'Z'

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun w -> w <> "")

(* [(* lint: allow rule1 rule2 *)] — register the rules against the
   comment's first line and the next line. *)
let parse_suppression suppressed ~line comment =
  match split_words comment with
  | "lint:" :: "allow" :: (_ :: _ as rules) ->
    List.iter
      (fun l ->
        let existing = Option.value ~default:[] (Hashtbl.find_opt suppressed l) in
        Hashtbl.replace suppressed l (rules @ existing))
      [ line; line + 1 ]
  | _ -> ()

let parse_annotation ~line comment =
  let keyword w =
    (* allow a trailing separator glued to the keyword: "init-only:" *)
    match String.index_opt w ':' with
    | Some k when k = String.length w - 1 -> String.sub w 0 k
    | _ -> w
  in
  match split_words comment with
  | [] -> None
  | first :: rest -> (
    match keyword first, rest with
    | "guarded-by", guard :: _ -> Some (line, Guarded_by guard)
    | "guarded-by", [] -> Some (line, Guarded_by "")
    | "domain-local", _ -> Some (line, Domain_local)
    | "init-only", _ -> Some (line, Init_only)
    | "read-only", _ -> Some (line, Read_only)
    | _ -> None)

let lex src =
  let n = String.length src in
  let tokens = ref [] in
  let suppressed = Hashtbl.create 8 in
  let annotations = Hashtbl.create 8 in
  let annotation_sites = ref [] in
  let line = ref 1 in
  let line_start = ref 0 in
  let i = ref 0 in
  (* consume the newline (if any) at absolute position [p] *)
  let bump_at p =
    if p < n && src.[p] = '\n' then begin
      incr line;
      line_start := p + 1
    end
  in
  let push start text = tokens := { line = !line; col = start - !line_start; text } :: !tokens in
  (* an annotation covers every line its comment spans, plus the next
     line — so it can trail the site or sit above it, even when the
     justification wraps *)
  let register_annotation ~first ~last ann =
    annotation_sites := (first, ann) :: !annotation_sites;
    for l = first to last + 1 do
      let existing = Option.value ~default:[] (Hashtbl.find_opt annotations l) in
      Hashtbl.replace annotations l (ann :: existing)
    done
  in
  while !i < n do
    let c = src.[!i] in
    if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* comment, possibly nested *)
      let start_line = !line in
      let buf = Buffer.create 64 in
      let depth = ref 1 in
      i := !i + 2;
      while !depth > 0 && !i < n do
        if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
          incr depth;
          Buffer.add_string buf "(*";
          i := !i + 2
        end
        else if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = ')' then begin
          decr depth;
          if !depth > 0 then Buffer.add_string buf "*)";
          i := !i + 2
        end
        else begin
          bump_at !i;
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      let body = Buffer.contents buf in
      parse_suppression suppressed ~line:start_line body;
      match parse_annotation ~line:start_line body with
      | Some (l, ann) -> register_annotation ~first:l ~last:!line ann
      | None -> ()
    end
    else if c = '"' then begin
      (* string literal *)
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        match src.[!i] with
        | '\\' ->
          if !i + 1 < n then bump_at (!i + 1);
          i := !i + 2
        | '"' ->
          fin := true;
          incr i
        | _ ->
          bump_at !i;
          incr i
      done
    end
    else if c = '{' && !i + 1 < n
            && ((src.[!i + 1] >= 'a' && src.[!i + 1] <= 'z')
               || src.[!i + 1] = '_' || src.[!i + 1] = '|') then begin
      (* possible quoted string {id|...|id} *)
      let j = ref (!i + 1) in
      while !j < n && ((src.[!j] >= 'a' && src.[!j] <= 'z') || src.[!j] = '_') do
        incr j
      done;
      if !j < n && src.[!j] = '|' then begin
        let id = String.sub src (!i + 1) (!j - !i - 1) in
        let close = "|" ^ id ^ "}" in
        let cl = String.length close in
        i := !j + 1;
        let fin = ref false in
        while (not !fin) && !i < n do
          if !i + cl <= n && String.sub src !i cl = close then begin
            i := !i + cl;
            fin := true
          end
          else begin
            bump_at !i;
            incr i
          end
        done
      end
      else begin
        push !i "{";
        incr i
      end
    end
    else if c = '\'' then begin
      (* char literal or type-variable quote *)
      if !i + 2 < n && src.[!i + 1] = '\\' then begin
        let j = ref (!i + 2) in
        while !j < n && src.[!j] <> '\'' do incr j done;
        i := !j + 1
      end
      else if !i + 2 < n && src.[!i + 2] = '\'' then begin
        bump_at (!i + 1);
        i := !i + 3
      end
      else incr i
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = ref (String.sub src start (!i - start)) in
      if is_upper !word.[0] then begin
        (* absorb the qualified path: Module.Sub.name *)
        let continue = ref true in
        while !continue && !i + 1 < n && src.[!i] = '.' && is_ident_start src.[!i + 1] do
          incr i;
          let s2 = !i in
          while !i < n && is_ident_char src.[!i] do incr i done;
          let segment = String.sub src s2 (!i - s2) in
          word := !word ^ "." ^ segment;
          if not (is_upper segment.[0]) then continue := false
        done
      end;
      push start !word
    end
    else begin
      let two tx =
        push !i tx;
        i := !i + 2
      in
      if c = ':' && !i + 1 < n && src.[!i + 1] = '=' then two ":="
      else if c = '<' && !i + 1 < n && src.[!i + 1] = '-' then two "<-"
      else if c = '-' && !i + 1 < n && src.[!i + 1] = '>' then two "->"
      else if c = '[' && !i + 1 < n && src.[!i + 1] = '|' then two "[|"
      else if c = '|' && !i + 1 < n && src.[!i + 1] = ']' then two "|]"
      else begin
        (match c with
        | '(' | ')' | '{' | '}' | '[' | ']' | ';' | '=' | ':' | '|' ->
          push !i (String.make 1 c)
        | _ -> ());
        bump_at !i;
        incr i
      end
    end
  done;
  {
    tokens = Array.of_list (List.rev !tokens);
    suppressed;
    annotations;
    annotation_sites = List.rev !annotation_sites;
  }

(* ------------------------------------------------------------------ *)
(* File walking                                                        *)

let rec walk dir acc =
  if not (Sys.file_exists dir && Sys.is_directory dir) then acc
  else
    Array.fold_left
      (fun acc entry ->
        if entry = "" || entry.[0] = '.' || entry.[0] = '_' then acc
        else begin
          let path = Filename.concat dir entry in
          if Sys.is_directory path then walk path acc
          else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then
            path :: acc
          else acc
        end)
      acc (Sys.readdir dir)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let module_name path = String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let annotations_at lexed line =
  Option.value ~default:[] (Hashtbl.find_opt lexed.annotations line)
