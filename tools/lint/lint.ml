(* extract-lint — the static-analysis driver for this repository's
   correctness conventions. Run via [dune build @lint] (see the root
   dune file) or directly: [extract-lint [OPTIONS] DIR ...].

   The framework is a rule registry (Lint_rule) over a shared lexical
   context: Lint_core carries the original four rules (poly-compare,
   partial-fn, raise-discipline, missing-mli), Lint_domain the
   domain-safety analyzer (domain-safety, lock-pairing, lock-raise,
   stale-annotation) and the doc/CONCURRENCY.md generator.

   Options:
     --format=text|json   output format (default text)
     --list-rules         print every rule with its one-line synopsis
     --explain-rule RULE  print a rule's full documentation
     --concurrency-doc    print the shared-state catalogue as markdown
                          (the checked-in doc/CONCURRENCY.md)

   Exit codes (the contract CI and editors consume):
     0  clean — no violations
     1  violations found (text/json listing on stdout)
     2  usage error (unknown flag or rule; message on stderr)

   Per-site suppression: [(* lint: allow <rule> ... *)] on the offending
   line or the line above. *)

let rules : Lint_rule.rule list =
  [
    Lint_core.poly_compare;
    Lint_core.partial_fn;
    Lint_core.raise_discipline;
    Lint_core.missing_mli;
    Lint_domain.domain_safety;
    Lint_domain.lock_pairing;
    Lint_domain.lock_raise;
    Lint_domain.stale_annotation;
  ]

let stdlib_exceptions = [ "Invalid_argument"; "Not_found"; "Exit"; "End_of_file" ]

(* [exception Name ...] declarations from interface files: the repo's
   sanctioned error types (lib/xml/error.mli's Parse_error, Codec.Corrupt,
   Check.Violation, ...). *)
let declared_exceptions (mlis : Lint_rule.file_unit list) =
  let declared = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace declared e ()) stdlib_exceptions;
  List.iter
    (fun (fu : Lint_rule.file_unit) ->
      let tokens = fu.lexed.Lint_source.tokens in
      Array.iteri
        (fun k (tok : Lint_source.token) ->
          if tok.text = "exception" && k + 1 < Array.length tokens then begin
            let name = tokens.(k + 1).Lint_source.text in
            if name <> "" && Lint_source.is_upper name.[0] then Hashtbl.replace declared name ()
          end)
        tokens)
    mlis;
  declared

let build_ctx roots : Lint_rule.ctx =
  let files =
    List.sort String.compare (List.fold_left (fun acc d -> Lint_source.walk d acc) [] roots)
  in
  let load path : Lint_rule.file_unit =
    { path; lexed = Lint_source.lex (Lint_source.read_file path) }
  in
  let mls = List.filter (fun f -> Filename.check_suffix f ".ml") files |> List.map load in
  let mlis = List.filter (fun f -> Filename.check_suffix f ".mli") files |> List.map load in
  { mls; mlis; files_scanned = List.length files; declared = declared_exceptions mlis }

let usage () =
  prerr_endline
    "usage: extract-lint [--format=text|json] [--list-rules] [--explain-rule RULE] \
     [--concurrency-doc] [DIR ...]";
  exit 2

let () =
  let format = ref `Text in
  let mode = ref `Check in
  let roots = ref [] in
  let rec parse = function
    | [] -> ()
    | "--format=json" :: rest ->
      format := `Json;
      parse rest
    | "--format=text" :: rest ->
      format := `Text;
      parse rest
    | "--list-rules" :: rest ->
      mode := `List;
      parse rest
    | "--explain-rule" :: rule :: rest ->
      mode := `Explain rule;
      parse rest
    | "--concurrency-doc" :: rest ->
      mode := `Doc;
      parse rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      Printf.eprintf "extract-lint: unknown option %s\n" arg;
      usage ()
    | dir :: rest ->
      roots := dir :: !roots;
      parse rest
  in
  (match Array.to_list Sys.argv with [] -> () | _ :: args -> parse args);
  let roots = match List.rev !roots with [] -> [ "lib"; "bin" ] | rs -> rs in
  match !mode with
  | `List ->
    List.iter (fun (r : Lint_rule.rule) -> Printf.printf "%-17s %s\n" r.name r.synopsis) rules
  | `Explain rule -> (
    match List.find_opt (fun (r : Lint_rule.rule) -> r.name = rule) rules with
    | Some r ->
      Printf.printf "%s — %s\n\n%s\n" r.name r.synopsis r.doc
    | None ->
      Printf.eprintf "extract-lint: unknown rule %s (try --list-rules)\n" rule;
      exit 2)
  | `Doc ->
    let ctx = build_ctx roots in
    print_string (Lint_domain.concurrency_doc ctx)
  | `Check ->
    let ctx = build_ctx roots in
    let violations =
      Lint_rule.sort (List.concat_map (fun (r : Lint_rule.rule) -> r.run ctx) rules)
    in
    (match !format with
    | `Text -> Lint_rule.render_text ~files_scanned:ctx.files_scanned violations
    | `Json -> Lint_rule.render_json ~files_scanned:ctx.files_scanned violations);
    if violations <> [] then exit 1
