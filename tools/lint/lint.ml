(* extract-lint — a source analyzer for this repository's correctness
   conventions. Run via [dune build @lint] (see the root dune file) or
   directly: [extract-lint DIR ...].

   Rules (each suppressible per-site with [(* lint: allow <rule> *)] on
   the offending line or the line above):

   - poly-compare      bare polymorphic [compare] (or [Stdlib.compare]).
                       Tree nodes, Dewey labels and posting entries must
                       use a dedicated comparator ([Int.compare],
                       [String.compare], [Dewey.compare_nodes], ...): the
                       polymorphic version is slow on the hot paths and
                       silently wrong on abstract or cyclic types.
                       Definition sites ([let compare], [val compare])
                       are exempt: defining a dedicated comparator named
                       [compare] is the fix, not the offence.
   - partial-fn        partial functions that raise on perfectly
                       representable inputs: [List.hd], [List.tl],
                       [List.nth], [Option.get] and exception-raising
                       [Hashtbl.find]. Use the [_opt] forms with explicit
                       handling.
   - raise-discipline  every [raise] must use an exception declared in
                       some library [.mli] (the registry is built by
                       scanning the tree: [Parse_error] from
                       lib/xml/error.mli, [Codec.Corrupt],
                       [Check.Violation], ...) or a sanctioned stdlib
                       exception ([Invalid_argument], [Not_found],
                       [Exit], [End_of_file]); re-raising a bound
                       exception variable is fine. [failwith] (anonymous
                       [Failure]) is banned.
   - missing-mli       every library module [lib/**/x.ml] must have an
                       [x.mli] interface.

   The analysis is lexical but OCaml-aware: comments (nested), string
   literals (including [{id|...|id}] quoted strings) and character
   literals are skipped, and qualified paths ([Hashtbl.find_opt]) are
   lexed as single tokens so they never collide with their partial
   cousins. *)

type token = {
  line : int;
  text : string;
}

type violation = {
  file : string;
  vline : int;
  rule : string;
  message : string;
}

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

type lexed = {
  tokens : token array;
  (* line -> rules suppressed on that line (from a comment on the same
     line or the line above) *)
  suppressed : (int, string list) Hashtbl.t;
}

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_upper c = c >= 'A' && c <= 'Z'

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun w -> w <> "")

(* [(* lint: allow rule1 rule2 *)] — register the rules against the
   comment's first line and the next line. *)
let parse_suppression suppressed ~line comment =
  match split_words comment with
  | "lint:" :: "allow" :: (_ :: _ as rules) ->
    List.iter
      (fun l ->
        let existing = Option.value ~default:[] (Hashtbl.find_opt suppressed l) in
        Hashtbl.replace suppressed l (rules @ existing))
      [ line; line + 1 ]
  | _ -> ()

let lex src =
  let n = String.length src in
  let tokens = ref [] in
  let suppressed = Hashtbl.create 8 in
  let line = ref 1 in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  let push text = tokens := { line = !line; text } :: !tokens in
  while !i < n do
    let c = src.[!i] in
    if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* comment, possibly nested *)
      let start_line = !line in
      let buf = Buffer.create 64 in
      let depth = ref 1 in
      i := !i + 2;
      while !depth > 0 && !i < n do
        if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
          incr depth;
          Buffer.add_string buf "(*";
          i := !i + 2
        end
        else if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = ')' then begin
          decr depth;
          if !depth > 0 then Buffer.add_string buf "*)";
          i := !i + 2
        end
        else begin
          bump src.[!i];
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      parse_suppression suppressed ~line:start_line (Buffer.contents buf)
    end
    else if c = '"' then begin
      (* string literal *)
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        match src.[!i] with
        | '\\' ->
          if !i + 1 < n then bump src.[!i + 1];
          i := !i + 2
        | '"' ->
          fin := true;
          incr i
        | ch ->
          bump ch;
          incr i
      done
    end
    else if c = '{' then begin
      (* possible quoted string {id|...|id} *)
      let j = ref (!i + 1) in
      while !j < n && ((src.[!j] >= 'a' && src.[!j] <= 'z') || src.[!j] = '_') do
        incr j
      done;
      if !j < n && src.[!j] = '|' then begin
        let id = String.sub src (!i + 1) (!j - !i - 1) in
        let close = "|" ^ id ^ "}" in
        let cl = String.length close in
        i := !j + 1;
        let fin = ref false in
        while (not !fin) && !i < n do
          if !i + cl <= n && String.sub src !i cl = close then begin
            i := !i + cl;
            fin := true
          end
          else begin
            bump src.[!i];
            incr i
          end
        done
      end
      else incr i
    end
    else if c = '\'' then begin
      (* char literal or type-variable quote *)
      if !i + 2 < n && src.[!i + 1] = '\\' then begin
        let j = ref (!i + 2) in
        while !j < n && src.[!j] <> '\'' do incr j done;
        i := !j + 1
      end
      else if !i + 2 < n && src.[!i + 2] = '\'' then begin
        bump src.[!i + 1];
        i := !i + 3
      end
      else incr i
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = ref (String.sub src start (!i - start)) in
      if is_upper !word.[0] then begin
        (* absorb the qualified path: Module.Sub.name *)
        let continue = ref true in
        while !continue && !i + 1 < n && src.[!i] = '.' && is_ident_start src.[!i + 1] do
          incr i;
          let s2 = !i in
          while !i < n && is_ident_char src.[!i] do incr i done;
          let segment = String.sub src s2 (!i - s2) in
          word := !word ^ "." ^ segment;
          if not (is_upper segment.[0]) then continue := false
        done
      end;
      push !word
    end
    else begin
      if c = '(' || c = ')' then push (String.make 1 c);
      bump c;
      incr i
    end
  done;
  { tokens = Array.of_list (List.rev !tokens); suppressed }

(* ------------------------------------------------------------------ *)
(* File walking                                                        *)

let rec walk dir acc =
  if not (Sys.file_exists dir && Sys.is_directory dir) then acc
  else
    Array.fold_left
      (fun acc entry ->
        if entry = "" || entry.[0] = '.' || entry.[0] = '_' then acc
        else begin
          let path = Filename.concat dir entry in
          if Sys.is_directory path then walk path acc
          else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli" then
            path :: acc
          else acc
        end)
      acc (Sys.readdir dir)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Declared-exception registry                                         *)

let stdlib_exceptions = [ "Invalid_argument"; "Not_found"; "Exit"; "End_of_file" ]

(* [exception Name ...] declarations from interface files: the repo's
   sanctioned error types (lib/xml/error.mli's Parse_error, Codec.Corrupt,
   Check.Violation, ...). *)
let declared_exceptions mlis =
  let declared = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace declared e ()) stdlib_exceptions;
  List.iter
    (fun path ->
      let { tokens; _ } = lex (read_file path) in
      Array.iteri
        (fun k tok ->
          if tok.text = "exception" && k + 1 < Array.length tokens then begin
            let name = tokens.(k + 1).text in
            if name <> "" && is_upper name.[0] then Hashtbl.replace declared name ()
          end)
        tokens)
    mlis;
  declared

let base_name path_token =
  match List.rev (String.split_on_char '.' path_token) with
  | base :: _ -> base
  | [] -> path_token

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)

let strip_stdlib tok =
  let prefix = "Stdlib." in
  if String.length tok > String.length prefix && String.sub tok 0 (String.length prefix) = prefix
  then String.sub tok (String.length prefix) (String.length tok - String.length prefix)
  else tok

let partial_functions =
  [
    "List.hd", "List.hd raises on []; match the list or use a non-empty invariant";
    "List.tl", "List.tl raises on []; match the list instead";
    "List.nth", "List.nth raises out of range; use List.nth_opt";
    "Option.get", "Option.get raises on None; match the option";
    "Hashtbl.find", "Hashtbl.find raises Not_found; use Hashtbl.find_opt with explicit handling";
  ]

let check_tokens ~file ~declared { tokens; suppressed } =
  let violations = ref [] in
  let add line rule message =
    let suppressed_here = Option.value ~default:[] (Hashtbl.find_opt suppressed line) in
    if not (List.mem rule suppressed_here) then
      violations := { file; vline = line; rule; message } :: !violations
  in
  let n = Array.length tokens in
  for k = 0 to n - 1 do
    let tok = tokens.(k) in
    let text = strip_stdlib tok.text in
    (* poly-compare — definition sites ([let compare = ...], [val compare :
       ...]) define a dedicated comparator and are exempt *)
    if text = "compare" then begin
      let definition_site =
        k > 0
        && List.mem tokens.(k - 1).text [ "let"; "rec"; "and"; "val"; "method"; "external" ]
      in
      if not definition_site then
        add tok.line "poly-compare"
          "polymorphic compare; use Int.compare / String.compare / a dedicated comparator"
    end;
    (* partial-fn *)
    (match List.assoc_opt text partial_functions with
    | Some message -> add tok.line "partial-fn" message
    | None -> ());
    (* raise-discipline *)
    if text = "failwith" then
      add tok.line "raise-discipline"
        "failwith raises the anonymous Failure; use invalid_arg or a declared error type";
    if text = "raise" || text = "raise_notrace" then begin
      (* the raised expression: skip open parens to its head token *)
      let j = ref (k + 1) in
      while !j < n && tokens.(!j).text = "(" do incr j done;
      if !j >= n then add tok.line "raise-discipline" "dangling raise"
      else begin
        let head = strip_stdlib tokens.(!j).text in
        if head = "" then add tok.line "raise-discipline" "dangling raise"
        else if is_upper head.[0] then begin
          let base = base_name head in
          if not (Hashtbl.mem declared base) then
            add tok.line "raise-discipline"
              (Printf.sprintf
                 "raise of undeclared exception %s; declare it in a library .mli or use a \
                  sanctioned error type"
                 head)
        end
        (* lowercase head: re-raising a bound exception is fine *)
      end
    end
  done;
  !violations

let is_lib_module path =
  (* lib/**/x.ml, under any of the scanned roots *)
  String.length path > 4
  && (String.sub path 0 4 = "lib/"
     ||
     let rec has_sub s sub i =
       i + String.length sub <= String.length s
       && (String.sub s i (String.length sub) = sub || has_sub s sub (i + 1))
     in
     has_sub path "/lib/" 0)

let check_missing_mli mls =
  List.filter_map
    (fun path ->
      if is_lib_module path && not (Sys.file_exists (path ^ "i")) then
        Some
          {
            file = path;
            vline = 1;
            rule = "missing-mli";
            message = "library module has no .mli interface";
          }
      else None)
    mls

(* ------------------------------------------------------------------ *)

let () =
  let roots =
    match Array.to_list Sys.argv with
    | [] | [ _ ] -> [ "lib"; "bin" ]
    | _ :: rest -> rest
  in
  let files = List.sort String.compare (List.fold_left (fun acc d -> walk d acc) [] roots) in
  let mls = List.filter (fun f -> Filename.check_suffix f ".ml") files in
  let mlis = List.filter (fun f -> Filename.check_suffix f ".mli") files in
  let declared = declared_exceptions mlis in
  let violations =
    check_missing_mli mls
    @ List.concat_map (fun path -> check_tokens ~file:path ~declared (lex (read_file path))) mls
  in
  let violations =
    List.sort
      (fun a b ->
        let c = String.compare a.file b.file in
        if c <> 0 then c
        else
          let c = Int.compare a.vline b.vline in
          if c <> 0 then c else String.compare a.rule b.rule)
      violations
  in
  List.iter
    (fun v -> Printf.printf "%s:%d: [%s] %s\n" v.file v.vline v.rule v.message)
    violations;
  if violations <> [] then begin
    Printf.printf "%d violation(s) in %d file(s) scanned\n" (List.length violations)
      (List.length files);
    exit 1
  end
