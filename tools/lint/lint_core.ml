(* The original four extract-lint rules: polymorphic compare, partial
   functions, raise discipline and missing interfaces. Diagnostics are
   kept byte-identical to the single-file linter these grew out of, so
   the cram self-tests pin the exact messages. *)

open Lint_rule
module S = Lint_source

let strip_stdlib tok =
  let prefix = "Stdlib." in
  if String.length tok > String.length prefix && String.sub tok 0 (String.length prefix) = prefix
  then String.sub tok (String.length prefix) (String.length tok - String.length prefix)
  else tok

let base_name path_token =
  match List.rev (String.split_on_char '.' path_token) with
  | base :: _ -> base
  | [] -> path_token

(* ------------------------------------------------------------------ *)

let poly_compare =
  {
    name = "poly-compare";
    synopsis = "bare polymorphic compare (or Stdlib.compare)";
    doc =
      "Tree nodes, Dewey labels and posting entries must use a dedicated\n\
       comparator (Int.compare, String.compare, Dewey.compare_nodes, ...):\n\
       the polymorphic version is slow on the hot paths and silently wrong\n\
       on abstract or cyclic types.\n\n\
       Definition sites (let compare, val compare) are exempt: defining a\n\
       dedicated comparator named compare is the fix, not the offence.";
    run =
      (fun ctx ->
        List.concat_map
          (fun fu ->
            let acc, add = collector fu in
            let tokens = fu.lexed.S.tokens in
            Array.iteri
              (fun k tok ->
                if strip_stdlib tok.S.text = "compare" then begin
                  let definition_site =
                    k > 0
                    && List.mem tokens.(k - 1).S.text
                         [ "let"; "rec"; "and"; "val"; "method"; "external" ]
                  in
                  if not definition_site then
                    add tok.S.line "poly-compare"
                      "polymorphic compare; use Int.compare / String.compare / a dedicated \
                       comparator"
                end)
              tokens;
            !acc)
          ctx.mls);
  }

let partial_functions =
  [
    "List.hd", "List.hd raises on []; match the list or use a non-empty invariant";
    "List.tl", "List.tl raises on []; match the list instead";
    "List.nth", "List.nth raises out of range; use List.nth_opt";
    "Option.get", "Option.get raises on None; match the option";
    "Hashtbl.find", "Hashtbl.find raises Not_found; use Hashtbl.find_opt with explicit handling";
  ]

let partial_fn =
  {
    name = "partial-fn";
    synopsis = "partial stdlib functions that raise on representable inputs";
    doc =
      "List.hd, List.tl, List.nth, Option.get and exception-raising\n\
       Hashtbl.find raise on perfectly representable inputs. Use the _opt\n\
       forms (or a match on the structure) with explicit handling.";
    run =
      (fun ctx ->
        List.concat_map
          (fun fu ->
            let acc, add = collector fu in
            Array.iter
              (fun tok ->
                match List.assoc_opt (strip_stdlib tok.S.text) partial_functions with
                | Some message -> add tok.S.line "partial-fn" message
                | None -> ())
              fu.lexed.S.tokens;
            !acc)
          ctx.mls);
  }

let raise_discipline =
  {
    name = "raise-discipline";
    synopsis = "raise of an exception not declared in a library .mli; failwith";
    doc =
      "Every raise must use an exception declared in some library .mli\n\
       (the registry is built by scanning the tree: Parse_error from\n\
       lib/xml/error.mli, Codec.Corrupt, Check.Violation, ...) or a\n\
       sanctioned stdlib exception (Invalid_argument, Not_found, Exit,\n\
       End_of_file); re-raising a bound exception variable is fine.\n\
       failwith (anonymous Failure) is banned.";
    run =
      (fun ctx ->
        List.concat_map
          (fun fu ->
            let acc, add = collector fu in
            let tokens = fu.lexed.S.tokens in
            let n = Array.length tokens in
            Array.iteri
              (fun k tok ->
                let text = strip_stdlib tok.S.text in
                if text = "failwith" then
                  add tok.S.line "raise-discipline"
                    "failwith raises the anonymous Failure; use invalid_arg or a declared error \
                     type";
                if text = "raise" || text = "raise_notrace" then begin
                  (* the raised expression: skip open parens to its head token *)
                  let j = ref (k + 1) in
                  while !j < n && tokens.(!j).S.text = "(" do incr j done;
                  if !j >= n then add tok.S.line "raise-discipline" "dangling raise"
                  else begin
                    let head = strip_stdlib tokens.(!j).S.text in
                    if head = "" then add tok.S.line "raise-discipline" "dangling raise"
                    else if S.is_upper head.[0] then begin
                      let base = base_name head in
                      if not (Hashtbl.mem ctx.declared base) then
                        add tok.S.line "raise-discipline"
                          (Printf.sprintf
                             "raise of undeclared exception %s; declare it in a library .mli or \
                              use a sanctioned error type"
                             head)
                    end
                    (* lowercase head: re-raising a bound exception is fine *)
                  end
                end)
              tokens;
            !acc)
          ctx.mls);
  }

let is_lib_module path =
  (* lib/**/x.ml, under any of the scanned roots *)
  String.length path > 4
  && (String.sub path 0 4 = "lib/"
     ||
     let rec has_sub s sub i =
       i + String.length sub <= String.length s
       && (String.sub s i (String.length sub) = sub || has_sub s sub (i + 1))
     in
     has_sub path "/lib/" 0)

let missing_mli =
  {
    name = "missing-mli";
    synopsis = "library module without a .mli interface";
    doc =
      "Every library module lib/**/x.ml must ship an x.mli interface:\n\
       interfaces are where the exception registry, the documented locking\n\
       story and the abstraction boundaries live. Executable directories\n\
       (bin/, bench/, tools/) are exempt.";
    run =
      (fun ctx ->
        List.filter_map
          (fun fu ->
            if is_lib_module fu.path && not (Sys.file_exists (fu.path ^ "i")) then
              Some
                {
                  file = fu.path;
                  vline = 1;
                  rule = "missing-mli";
                  message = "library module has no .mli interface";
                }
            else None)
          ctx.mls);
  }
