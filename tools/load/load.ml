(* eXtract closed-loop load harness.

   Drives the real demo server over real sockets: N client threads each
   hold one keep-alive connection and issue Zipf-distributed /search
   requests back to back (closed loop — a client sends its next request
   only after reading the previous response, so offered load adapts to
   server capacity instead of overrunning it). The query mix comes from
   the datagen workload generator over the retail dataset, skewed so hot
   queries exist and the sharded caches see realistic reuse.

   By default the harness is self-hosting: it builds the corpus, starts
   the domain pool in-process on a free port (one run per --workers
   value), and tears it down between runs. --port drives an externally
   started server instead.

   Output: a human table, BENCH_load.json (machine-readable, tracked
   across PRs like BENCH_hotpath.json; each row also embeds the
   server's own /metrics delta over the window — sheds, accept-queue
   peak, keep-alive reuses), and an optional --floor=PATH
   SLO gate that fails the process when throughput-per-core drops below
   a third of the checked-in floor or p99 latency exceeds 3x its floor —
   same contract as the extract-bench hot-path gate.

   Run:  dune exec tools/load/load.exe -- --duration 3 --workers 1,4
         dune exec tools/load/load.exe -- --floor=bench/load_floor.json *)

module Demo_server = Extract_server.Demo_server
module Corpus = Extract_snippet.Corpus
module Live_corpus = Extract_snippet.Live_corpus
module Pipeline = Extract_snippet.Pipeline
module Document = Extract_store.Document
module Datagen = Extract_datagen
module Deadline = Extract_util.Deadline
module Prng = Extract_util.Prng
module Zipf = Extract_util.Zipf
module Table = Extract_util.Table
module Faults = Extract_util.Faults

(* ------------------------------------------------------------------ *)
(* Options                                                             *)

let duration = ref 3.0 (* init-only — set by Arg.parse before any client thread starts *)
let connections = ref 8 (* init-only — set by Arg.parse before any client thread starts *)
let workers_spec = ref "1" (* init-only — set by Arg.parse before any client thread starts *)
let queue_depth = ref 64 (* init-only — set by Arg.parse before any client thread starts *)
let external_port = ref 0 (* 0 = self-host *) (* init-only — set by Arg.parse before any client thread starts *)
let skew = ref 0.9 (* init-only — set by Arg.parse before any client thread starts *)
let query_count = ref 200 (* init-only — set by Arg.parse before any client thread starts *)
let seed = ref 42 (* init-only — set by Arg.parse before any client thread starts *)
let out_path = ref "BENCH_load.json" (* init-only — set by Arg.parse before any client thread starts *)
let floor_path = ref "" (* init-only — set by Arg.parse before any client thread starts *)
let chaos_spec = ref "" (* init-only — set by Arg.parse before any client thread starts *)
let update_mix = ref false (* init-only — set by Arg.parse before any client thread starts *)

let spec =
  [
    "--duration", Arg.Set_float duration, "SECONDS measured window per run (default 3)";
    "--connections", Arg.Set_int connections, "N concurrent client connections (default 8)";
    ( "--workers",
      Arg.Set_string workers_spec,
      "LIST comma-separated pool sizes, one run each (default 1; try 1,4)" );
    "--queue-depth", Arg.Set_int queue_depth, "K server accept-queue depth (default 64)";
    ( "--port",
      Arg.Set_int external_port,
      "PORT drive an already-running server instead of self-hosting" );
    "--skew", Arg.Set_float skew, "S Zipf skew of the query mix (default 0.9)";
    "--queries", Arg.Set_int query_count, "N distinct queries in the mix (default 200)";
    "--seed", Arg.Set_int seed, "N workload + client PRNG seed (default 42)";
    "--out", Arg.Set_string out_path, "PATH JSON results file (default BENCH_load.json)";
    ( "--floor",
      Arg.Set_string floor_path,
      "PATH SLO gate: exit 1 when rps/core < floor/3 or p99 > 3x floor" );
    ( "--chaos",
      Arg.Set_string chaos_spec,
      "SPEC extra run with EXTRACT_FAULTS-style injection armed (self-host only)" );
    ( "--update-mix",
      Arg.Set update_mix,
      " extra run with a writer thread POSTing /admin/add to a live store while \
       readers mix /live/search into the query load (self-host only; excluded from \
       the floor gate)" );
  ]

let usage = "extract-load [options] — closed-loop load test of the demo server"

(* ------------------------------------------------------------------ *)
(* Minimal buffered HTTP/1.1 client. A peer close mid-read raises
   End_of_file; callers treat it as a reconnect. *)

(* domain-local — one conn per client thread, never shared *)
type conn = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int;
  mutable len : int;
}

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  { fd; buf = Bytes.create 65536; pos = 0; len = 0 }

let close_conn c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let refill c =
  let n = Unix.read c.fd c.buf 0 (Bytes.length c.buf) in
  if n = 0 then raise End_of_file;
  c.pos <- 0;
  c.len <- n

let read_char c =
  if c.pos >= c.len then refill c;
  let ch = Bytes.get c.buf c.pos in
  c.pos <- c.pos + 1;
  ch

let read_line c =
  let b = Buffer.create 64 in
  let rec loop () =
    match read_char c with
    | '\n' -> Buffer.contents b
    | '\r' -> loop ()
    | ch ->
      Buffer.add_char b ch;
      loop ()
  in
  loop ()

let skip_body c n =
  let remaining = ref n in
  while !remaining > 0 do
    if c.pos >= c.len then refill c;
    let take = min !remaining (c.len - c.pos) in
    c.pos <- c.pos + take;
    remaining := !remaining - take
  done

let write_all fd s =
  let bytes = Bytes.of_string s in
  let rec loop off =
    if off < Bytes.length bytes then
      loop (off + Unix.write fd bytes off (Bytes.length bytes - off))
  in
  loop 0

(* status line + headers: code, Content-Length, whether the server asked
   to close (every eXtract response carries a Content-Length) *)
let read_head c =
  let status_line = read_line c in
  let code =
    match String.split_on_char ' ' status_line with
    | _ :: code :: _ -> (
      match int_of_string_opt code with
      | Some n -> n
      | None -> raise End_of_file)
    | _ -> raise End_of_file
  in
  let content_length = ref 0 in
  let close = ref false in
  let rec headers () =
    let l = read_line c in
    if l <> "" then begin
      (match String.index_opt l ':' with
      | Some i ->
        let name = String.lowercase_ascii (String.trim (String.sub l 0 i)) in
        let value = String.trim (String.sub l (i + 1) (String.length l - i - 1)) in
        if name = "content-length" then
          content_length := Option.value ~default:0 (int_of_string_opt value)
        else if name = "connection" && String.lowercase_ascii value = "close" then
          close := true
      | None -> ());
      headers ()
    end
  in
  headers ();
  code, !content_length, !close

let read_response c =
  let code, content_length, close = read_head c in
  skip_body c content_length;
  code, close

let read_body c n =
  let b = Buffer.create (max n 64) in
  let remaining = ref n in
  while !remaining > 0 do
    if c.pos >= c.len then refill c;
    let take = min !remaining (c.len - c.pos) in
    Buffer.add_subbytes b c.buf c.pos take;
    c.pos <- c.pos + take;
    remaining := !remaining - take
  done;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Server-side counters: scrape /metrics before and after each measured
   window so every BENCH row carries the server's own view of the run —
   how many connections it shed, how deep the accept queue got, how
   often keep-alive connections were reused — alongside the client-side
   numbers. Works against self-hosted and --port servers alike. *)

let http_get_body ~port target =
  match
    let c = connect port in
    Fun.protect
      ~finally:(fun () -> close_conn c)
      (fun () ->
        write_all c.fd
          (Printf.sprintf
             "GET %s HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n" target);
        let code, content_length, _close = read_head c in
        let body = read_body c content_length in
        if code = 200 then Some body else None)
  with
  | r -> r
  | exception (End_of_file | Unix.Unix_error _) -> None

(* the value of an unlabelled metric in Prometheus text format; the
   trailing space keeps extract_accept_queue_depth from matching
   extract_accept_queue_depth_peak *)
let metric_value name body =
  let prefix = name ^ " " in
  let plen = String.length prefix in
  String.split_on_char '\n' body
  |> List.find_map (fun line ->
         if String.length line > plen && String.sub line 0 plen = prefix then
           float_of_string_opt (String.trim (String.sub line plen (String.length line - plen)))
         else None)

type server_sample = { sv_shed : float; sv_peak : float; sv_reuses : float }

let scrape_server ~port =
  match http_get_body ~port "/metrics" with
  | None -> None
  | Some body ->
    let v name = Option.value ~default:0. (metric_value name body) in
    Some
      {
        sv_shed = v "extract_accept_queue_shed_total";
        sv_peak = v "extract_accept_queue_depth_peak";
        sv_reuses = v "extract_keepalive_reuses_total";
      }

type server_delta = {
  sd_shed : int; (* connections shed (503) during the window *)
  sd_peak : int; (* accept-queue high-water mark as of the scrape *)
  sd_reuses : int; (* keep-alive connection reuses during the window *)
}

(* ------------------------------------------------------------------ *)
(* Query mix                                                           *)

let encode_query q = String.map (fun ch -> if ch = ' ' then '+' else ch) q

let build_queries db =
  let queries =
    Datagen.Workload.generate
      { Datagen.Workload.default with Datagen.Workload.queries = !query_count; seed = !seed }
      (Pipeline.kinds db)
  in
  if queries = [] then begin
    prerr_endline "extract-load: workload generator produced no queries";
    exit 2
  end;
  queries

let search_target i q =
  Printf.sprintf "/search?data=retail&q=%s&bound=%d" (encode_query q) (4 + (i mod 9))

let build_targets queries = Array.of_list (List.mapi search_target queries)

(* the update-mix read side: every fourth request reads the live store
   (uncached, lock-free view snapshot), the rest the static corpus *)
let build_mixed_targets queries =
  Array.of_list
    (List.mapi
       (fun i q ->
         if i mod 4 = 0 then
           Printf.sprintf "/live/search?q=%s&bound=%d" (encode_query q) (4 + (i mod 9))
         else search_target i q)
       queries)

(* ------------------------------------------------------------------ *)
(* Closed-loop clients                                                 *)

(* domain-local — each record is owned by one client thread and only
   read by the harness after Thread.join *)
type client_stats = {
  mutable latencies_ms : float list;
  mutable ok : int;
  mutable shed : int; (* 503 *)
  mutable other : int; (* any other non-200 *)
  mutable reconnects : int;
  mutable transport_errors : int;
}

let fresh_stats () =
  { latencies_ms = []; ok = 0; shed = 0; other = 0; reconnects = 0; transport_errors = 0 }

let client_loop ~port ~deadline ~targets ~zipf ~seed stats =
  let rng = Prng.create seed in
  let current = ref None in
  let conn () =
    match !current with
    | Some c -> c
    | None ->
      let c = connect port in
      current := Some c;
      c
  in
  let drop () =
    (match !current with
    | Some c -> close_conn c
    | None -> ());
    current := None
  in
  while not (Deadline.expired deadline) do
    match
      let c = conn () in
      let target = targets.(Zipf.sample zipf rng) in
      let t0 = Deadline.now () in
      write_all c.fd
        (Printf.sprintf "GET %s HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n" target);
      let code, close = read_response c in
      let dt_ms = (Deadline.now () -. t0) *. 1000. in
      stats.latencies_ms <- dt_ms :: stats.latencies_ms;
      if code = 200 then stats.ok <- stats.ok + 1
      else if code = 503 then stats.shed <- stats.shed + 1
      else stats.other <- stats.other + 1;
      if close then begin
        drop ();
        stats.reconnects <- stats.reconnects + 1
      end
    with
    | () -> ()
    | exception (End_of_file | Unix.Unix_error _) ->
      stats.transport_errors <- stats.transport_errors + 1;
      drop ();
      (* back off briefly: a refused connect must not busy-spin *)
      Thread.delay 0.005
  done;
  drop ()

(* ------------------------------------------------------------------ *)
(* Update writer: one closed-loop thread POSTing journalled updates to
   the live store while the read clients run — measures how much read
   throughput a concurrent single-writer stream costs. The writer
   paces itself (it models an operator feeding documents, not a read
   storm) and folds the journal with a compact every 64th operation. *)

let writer_loop ~port ~deadline updates =
  let current = ref None in
  let conn () =
    match !current with
    | Some c -> c
    | None ->
      let c = connect port in
      current := Some c;
      c
  in
  let drop () =
    (match !current with
    | Some c -> close_conn c
    | None -> ());
    current := None
  in
  let i = ref 0 in
  while not (Deadline.expired deadline) do
    (match
       let c = conn () in
       let target, body =
         if !i mod 64 = 63 then "/admin/compact", ""
         else
           ( Printf.sprintf "/admin/add?name=w%d.xml" (!i mod 8),
             Printf.sprintf
               "<store><city>Update %d</city><name>Writer stock</name></store>" !i )
       in
       write_all c.fd
         (Printf.sprintf
            "POST %s HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: %d\r\n\r\n%s"
            target (String.length body) body);
       let code, close = read_response c in
       incr i;
       if code = 200 then incr updates;
       if close then drop ()
     with
    | () -> ()
    | exception (End_of_file | Unix.Unix_error _) -> drop ());
    Thread.delay 0.002
  done;
  drop ()

(* ------------------------------------------------------------------ *)
(* One measured run                                                    *)

type run_result = {
  r_workers : int;
  r_chaos : bool;
  r_update_mix : bool;
  r_updates : int;
  r_elapsed : float;
  r_requests : int;
  r_ok : int;
  r_shed : int;
  r_other : int;
  r_reconnects : int;
  r_transport_errors : int;
  r_rps : float;
  r_rps_per_core : float;
  r_p50_ms : float;
  r_p95_ms : float;
  r_p99_ms : float;
  r_server : server_delta option; (* None when /metrics was unreachable *)
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(int_of_float (p /. 100. *. float_of_int (n - 1) +. 0.5))

(* one serial pass over the targets, so every run starts against the
   same warm caches instead of the first run paying all the misses *)
let warmup ~port ~targets =
  let c = ref (connect port) in
  Array.iter
    (fun target ->
      match
        write_all !c.fd
          (Printf.sprintf "GET %s HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n" target);
        read_response !c
      with
      | _, true ->
        close_conn !c;
        c := connect port
      | _, false -> ()
      | exception (End_of_file | Unix.Unix_error _) ->
        close_conn !c;
        c := connect port)
    targets;
  close_conn !c

let run_load ?(with_writer = false) ~port ~workers ~chaos ~targets () =
  let zipf = Zipf.create ~n:(Array.length targets) ~skew:!skew in
  let stats = Array.init !connections (fun _ -> fresh_stats ()) in
  let before = scrape_server ~port in
  let deadline = Deadline.after !duration in
  let updates = ref 0 (* written by the single writer thread, read after join *) in
  let t0 = Deadline.now () in
  let writer =
    if with_writer then Some (Thread.create (fun () -> writer_loop ~port ~deadline updates) ())
    else None
  in
  let threads =
    Array.mapi
      (fun i s ->
        Thread.create
          (fun () ->
            client_loop ~port ~deadline ~targets ~zipf ~seed:(!seed + (17 * (i + 1))) s)
          ())
      stats
  in
  Array.iter Thread.join threads;
  Option.iter Thread.join writer;
  let elapsed = Deadline.now () -. t0 in
  let server =
    match before, scrape_server ~port with
    | Some b, Some a ->
      Some
        {
          sd_shed = int_of_float (a.sv_shed -. b.sv_shed);
          sd_peak = int_of_float a.sv_peak;
          sd_reuses = int_of_float (a.sv_reuses -. b.sv_reuses);
        }
    | _ -> None
  in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 stats in
  let latencies =
    Array.of_list (Array.fold_left (fun acc s -> List.rev_append s.latencies_ms acc) [] stats)
  in
  Array.sort Float.compare latencies;
  let requests = Array.length latencies in
  let rps = if elapsed > 0. then float_of_int requests /. elapsed else 0.0 in
  {
    r_workers = workers;
    r_chaos = chaos;
    r_update_mix = with_writer;
    r_updates = !updates;
    r_elapsed = elapsed;
    r_requests = requests;
    r_ok = sum (fun s -> s.ok);
    r_shed = sum (fun s -> s.shed);
    r_other = sum (fun s -> s.other);
    r_reconnects = sum (fun s -> s.reconnects);
    r_transport_errors = sum (fun s -> s.transport_errors);
    r_rps = rps;
    r_rps_per_core = rps /. float_of_int (max 1 workers);
    r_p50_ms = percentile latencies 50.;
    r_p95_ms = percentile latencies 95.;
    r_p99_ms = percentile latencies 99.;
    r_server = server;
  }

let with_pool ~server ~workers f =
  let sock = Demo_server.listen ~port:0 in
  let config =
    {
      Demo_server.default_config with
      Demo_server.workers;
      queue_depth = !queue_depth;
      log = (fun _ -> () (* client disconnects during teardown are expected *));
    }
  in
  let pool = Demo_server.start_pool ~config server sock in
  Fun.protect
    ~finally:(fun () ->
      Demo_server.stop_pool pool;
      try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () -> f (Demo_server.bound_port sock))

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let json_of_runs ~cores ~scaling runs =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"experiment\": \"load\",\n";
  Buffer.add_string b "  \"dataset\": \"retail\",\n";
  Buffer.add_string b (Printf.sprintf "  \"cores\": %d,\n" cores);
  Buffer.add_string b
    (Printf.sprintf
       "  \"workload\": { \"queries\": %d, \"skew\": %.2f, \"seed\": %d, \
        \"connections\": %d, \"duration_s\": %.2f },\n"
       !query_count !skew !seed !connections !duration);
  Buffer.add_string b "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      let server =
        match r.r_server with
        | Some s ->
          Printf.sprintf
            "{ \"shed_total\": %d, \"queue_depth_peak\": %d, \"keepalive_reuses\": %d }"
            s.sd_shed s.sd_peak s.sd_reuses
        | None -> "null"
      in
      Buffer.add_string b
        (Printf.sprintf
           "    { \"workers\": %d, \"chaos\": %b, \"update_mix\": %b, \"updates\": %d, \
            \"elapsed_s\": %.3f, \"requests\": \
            %d, \"ok\": %d, \"shed\": %d, \"other\": %d, \"reconnects\": %d, \
            \"transport_errors\": %d, \"throughput_rps\": %.1f, \
            \"throughput_per_core_rps\": %.1f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \
            \"p99_ms\": %.3f, \"server\": %s }%s\n"
           r.r_workers r.r_chaos r.r_update_mix r.r_updates r.r_elapsed r.r_requests
           r.r_ok r.r_shed r.r_other
           r.r_reconnects r.r_transport_errors r.r_rps r.r_rps_per_core r.r_p50_ms
           r.r_p95_ms r.r_p99_ms server
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (match scaling with
    | Some s -> Printf.sprintf "  \"scaling_4v1\": %.2f\n" s
    | None -> "  \"scaling_4v1\": null\n");
  Buffer.add_string b "}\n";
  Buffer.contents b

let print_table runs =
  let t =
    Table.create
      [ "workers"; "reqs"; "rps"; "rps/core"; "p50"; "p95"; "p99"; "shed"; "errors" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          (if r.r_chaos then Printf.sprintf "%d (chaos)" r.r_workers
           else if r.r_update_mix then
             Printf.sprintf "%d (+%d upd)" r.r_workers r.r_updates
           else string_of_int r.r_workers);
          string_of_int r.r_requests;
          Printf.sprintf "%.0f" r.r_rps;
          Printf.sprintf "%.0f" r.r_rps_per_core;
          Printf.sprintf "%.2fms" r.r_p50_ms;
          Printf.sprintf "%.2fms" r.r_p95_ms;
          Printf.sprintf "%.2fms" r.r_p99_ms;
          string_of_int r.r_shed;
          string_of_int (r.r_other + r.r_transport_errors);
        ])
    runs;
  Table.print
    ~title:
      (Printf.sprintf "extract-load — closed loop, %d connections, %.1fs per run"
         !connections !duration)
    t

(* Pull one numeric value out of the floor file without a JSON parser —
   same technique as the extract-bench hot-path gate. *)
let parse_floor_number key contents =
  let key = Printf.sprintf "%S" key in
  let klen = String.length key in
  let n = String.length contents in
  let rec find i =
    if i + klen > n then None
    else if String.sub contents i klen = key then Some (i + klen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let i = ref start in
    while !i < n && (contents.[!i] = ':' || contents.[!i] = ' ') do
      incr i
    done;
    let j = ref !i in
    while
      !j < n
      && (match contents.[!j] with '0' .. '9' | '.' | 'e' | '+' | '-' -> true | _ -> false)
    do
      incr j
    done;
    if !j > !i then float_of_string_opt (String.sub contents !i (!j - !i)) else None

(* SLO gate over the last plain run (chaos and update-mix rows carry
   injected failure or writer interference and are informational):
   throughput-per-core must stay above a third of the floor, p99 below
   3x its floor — generous bands that absorb runner variance but catch
   real regressions. *)
let floor_gate runs =
  if !floor_path <> "" then begin
    let contents =
      match In_channel.with_open_bin !floor_path In_channel.input_all with
      | c -> Some c
      | exception Sys_error msg ->
        Printf.eprintf "floor gate: cannot read %s: %s\n" !floor_path msg;
        None
    in
    match contents with
    | None -> exit 1
    | Some contents -> (
      let floor_tpc = parse_floor_number "throughput_per_core_rps" contents in
      let floor_p99 = parse_floor_number "p99_ms" contents in
      match floor_tpc, floor_p99 with
      | None, _ | _, None ->
        Printf.eprintf
          "floor gate: %s needs \"throughput_per_core_rps\" and \"p99_ms\"\n"
          !floor_path;
        exit 1
      | Some floor_tpc, Some floor_p99 -> (
        match
          List.rev (List.filter (fun r -> (not r.r_chaos) && not r.r_update_mix) runs)
        with
        | [] ->
          Printf.eprintf "floor gate: no non-chaos run to judge\n";
          exit 1
        | r :: _ ->
          let tpc_limit = floor_tpc /. 3. in
          let p99_limit = floor_p99 *. 3. in
          Printf.printf
            "floor gate: %.1f rps/core (floor %.1f, limit %.1f), p99 %.2fms (floor \
             %.2fms, limit %.2fms)\n"
            r.r_rps_per_core floor_tpc tpc_limit r.r_p99_ms floor_p99 p99_limit;
          let failed = ref false in
          if r.r_rps_per_core < tpc_limit then begin
            print_endline
              "floor gate: FAILED — throughput per core below a third of the floor";
            failed := true
          end;
          if r.r_p99_ms > p99_limit then begin
            print_endline "floor gate: FAILED — p99 latency more than 3x the floor";
            failed := true
          end;
          if !failed then exit 1 else print_endline "floor gate: ok"))
  end

(* ------------------------------------------------------------------ *)

let main () =
  Arg.parse spec
    (fun a ->
      Printf.eprintf "extract-load: unexpected argument %S\n%s\n" a usage;
      exit 2)
    usage;
  let worker_counts =
    String.split_on_char ',' !workers_spec
    |> List.filter_map (fun s ->
           match int_of_string_opt (String.trim s) with
           | Some n when n >= 1 -> Some n
           | _ -> None)
  in
  let worker_counts = if worker_counts = [] then [ 1 ] else worker_counts in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "extract-load: %d core(s) visible, workers %s\n%!" cores
    (String.concat "," (List.map string_of_int worker_counts));
  let db =
    Pipeline.build (Document.of_document (Datagen.Retail.generate Datagen.Retail.default))
  in
  let queries = build_queries db in
  let targets = build_targets queries in
  Printf.printf "query mix: %d targets over retail, zipf skew %.2f\n%!"
    (Array.length targets) !skew;
  let runs =
    if !external_port > 0 then begin
      (* external server: one run; workers taken from the first --workers
         value purely for the per-core arithmetic *)
      let workers = match worker_counts with w :: _ -> w | [] -> 1 in
      warmup ~port:!external_port ~targets;
      [ run_load ~port:!external_port ~workers ~chaos:false ~targets () ]
    end
    else begin
      let server = Demo_server.create (Corpus.add Corpus.empty ~name:"retail" db) in
      let measured =
        List.map
          (fun workers ->
            with_pool ~server ~workers (fun port ->
                warmup ~port ~targets;
                run_load ~port ~workers ~chaos:false ~targets ()))
          worker_counts
      in
      let chaos_runs =
        if !chaos_spec = "" then []
        else begin
          (* chaos run: same load with faults armed — shows tail latency
             under injected failure; excluded from the gate and scaling *)
          match Faults.configure !chaos_spec with
          | Error msg ->
            Printf.eprintf "extract-load: bad --chaos spec: %s\n" msg;
            exit 2
          | Ok () ->
            (* arm the chaos run at the largest configured pool *)
            let workers = List.fold_left (fun _ w -> w) 1 worker_counts in
            let r =
              with_pool ~server ~workers (fun port ->
                  run_load ~port ~workers ~chaos:true ~targets ())
            in
            Faults.clear ();
            [ r ]
        end
      in
      let mix_runs =
        if not !update_mix then []
        else begin
          (* update-mix run: a scratch live store next to the static
             corpus, one writer thread journalling adds (and periodic
             compacts) while the readers run a mix of /search and
             /live/search — read throughput under a concurrent
             single-writer stream *)
          let live_dir = Filename.temp_file "extract-load-live" "" in
          Sys.remove live_dir;
          let live = Live_corpus.open_dir live_dir in
          Live_corpus.add live ~name:"seed.xml"
            ~xml:"<store><city>Seed</city><name>Writer stock</name></store>";
          let mix_server =
            Demo_server.create ~live (Corpus.add Corpus.empty ~name:"retail" db)
          in
          let workers = List.fold_left (fun _ w -> w) 1 worker_counts in
          let mixed = build_mixed_targets queries in
          let r =
            with_pool ~server:mix_server ~workers (fun port ->
                warmup ~port ~targets:mixed;
                run_load ~with_writer:true ~port ~workers ~chaos:false ~targets:mixed ())
          in
          Live_corpus.close live;
          [ r ]
        end
      in
      measured @ chaos_runs @ mix_runs
    end
  in
  let scaling =
    let rps_at w =
      List.find_opt
        (fun r -> r.r_workers = w && (not r.r_chaos) && not r.r_update_mix)
        runs
      |> Option.map (fun r -> r.r_rps)
    in
    match rps_at 1, rps_at 4 with
    | Some one, Some four when one > 0. -> Some (four /. one)
    | _ -> None
  in
  print_table runs;
  (match scaling with
  | Some s ->
    Printf.printf "scaling 4 vs 1 workers: %.2fx (on %d visible core(s))\n" s cores
  | None -> ());
  let out = open_out !out_path in
  output_string out (json_of_runs ~cores ~scaling runs);
  close_out out;
  Printf.printf "wrote %s\n" !out_path;
  floor_gate runs

let () = main ()
