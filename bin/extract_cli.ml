(* The eXtract command-line interface — the CLI equivalent of the demo's
   web UI (paper §4): pick a dataset, view it, issue keyword queries,
   customize the snippet size bound, inspect the snippets, and open the
   full query result behind any of them. *)

open Cmdliner

module Pipeline = Extract_snippet.Pipeline
module Snippet_tree = Extract_snippet.Snippet_tree
module Selector = Extract_snippet.Selector
module Ilist = Extract_snippet.Ilist
module Feature = Extract_snippet.Feature
module Engine = Extract_search.Engine
module Result_tree = Extract_search.Result_tree
module Document = Extract_store.Document
module Check = Extract_check.Check

(* Opt-in stage-boundary invariant assertions: EXTRACT_CHECK=1 makes every
   verb verify its artifacts as they are built and queried. *)
let () = Check.install_from_env ()

(* Opt-in deterministic fault injection: EXTRACT_FAULTS=point:spec arms
   the named failure points (see extract_util.Faults). A typo in the spec
   is a usage error, not a crash. *)
let () =
  match Extract_util.Faults.install_from_env () with
  | () -> ()
  | exception Invalid_argument msg ->
    prerr_endline msg;
    exit 2

(* Opt-in structured event log: EXTRACT_LOG=level[:FILE] turns on the
   JSON-lines logger for any verb (see extract_obs.Log). *)
let () =
  match Extract_obs.Log.install_from_env () with
  | () -> ()
  | exception Invalid_argument msg ->
    prerr_endline msg;
    exit 2

(* Opt-in trace sampling: EXTRACT_TRACE_SAMPLE=1/N records one request in
   every N (see extract_obs.Trace); malformed values are ignored. *)
let () = Extract_obs.Trace.install_from_env ()

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"XML document.")

let query_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"Keyword query.")

let bound_arg =
  Arg.(
    value
    & opt int Pipeline.default_bound
    & info [ "b"; "bound" ] ~docv:"EDGES" ~doc:"Snippet size bound in edges.")

let limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "n"; "limit" ] ~docv:"N" ~doc:"Show at most $(docv) results.")

let semantics_conv =
  let parse s =
    match Engine.semantics_of_string s with
    | Some sem -> Ok sem
    | None -> Error (`Msg (Printf.sprintf "unknown engine %S (slca|elca|xseek|xsearch)" s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Engine.string_of_semantics s))

let semantics_arg =
  Arg.(
    value
    & opt semantics_conv Engine.Xseek
    & info [ "e"; "engine" ] ~docv:"ENGINE" ~doc:"Search engine: slca, elca, xseek or xsearch.")

(* --log-level LEVEL overrides EXTRACT_LOG for this invocation; absent
   means leave whatever install_from_env configured. *)
let log_level_conv =
  let parse s =
    match Extract_obs.Log.level_of_string s with
    | lvl -> Ok lvl
    | exception Invalid_argument msg -> Error (`Msg msg)
  in
  let print ppf = function
    | None -> Format.pp_print_string ppf "off"
    | Some lvl -> Format.pp_print_string ppf (Extract_obs.Log.level_name lvl)
  in
  Arg.conv (parse, print)

let log_level_arg =
  Arg.(
    value
    & opt (some log_level_conv) None
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Emit structured JSON-lines events to stderr at $(docv) (debug, info, warn, \
           error or off). Overrides the EXTRACT_LOG environment variable, which also \
           accepts level:FILE to log to a file instead.")

let apply_log_level = function
  | None -> ()
  | Some lvl -> Extract_obs.Log.set_level lvl

(* Accept an XML file, a binary arena, or a bundle written by [extract
   save]: Corpus.load_file dispatches on the leading magic and, when a
   persisted artifact is corrupt but its XML source is still next to it,
   rebuilds from the source with a warning. *)
let load_db_raw file =
  Extract_snippet.Corpus.load_file
    ~on_warning:(fun msg -> Printf.eprintf "warning: %s\n%!" msg)
    file

(* a broken input file is a user error, not an internal one: report it
   cleanly and exit 1 instead of letting cmdliner print a backtrace *)
let load_db file =
  match load_db_raw file with
  | db -> db
  | exception Extract_xml.Error.Parse_error (pos, msg) ->
    Printf.eprintf "error: %s: %s\n%!" file (Extract_xml.Error.to_string pos msg);
    exit 1
  | exception Extract_store.Codec.Corrupt msg ->
    Printf.eprintf "error: %s: %s\n%!" file msg;
    exit 1
  | exception Extract_store.Codec.Truncated msg ->
    Printf.eprintf "error: %s: truncated: %s\n%!" file msg;
    exit 1

(* ------------------------------------------------------------------ *)
(* Live-store helpers                                                  *)

module Live = Extract_store.Live
module Live_corpus = Extract_snippet.Live_corpus
module Shard_set = Extract_snippet.Shard_set

let live_warning msg = Printf.eprintf "warning: %s\n%!" msg

(* live-store errors are user-facing: report and exit 1, like load_db *)
let live_guard dir f =
  match f () with
  | v -> v
  | exception Extract_store.Codec.Corrupt msg ->
    Printf.eprintf "error: %s: %s\n%!" dir msg;
    exit 1
  | exception Extract_store.Codec.Truncated msg ->
    Printf.eprintf "error: %s: truncated: %s\n%!" dir msg;
    exit 1
  | exception Extract_xml.Error.Parse_error (pos, msg) ->
    Printf.eprintf "error: %s\n%!" (Extract_xml.Error.to_string pos msg);
    exit 1
  | exception Invalid_argument msg ->
    Printf.eprintf "error: %s\n%!" msg;
    exit 1

let open_live dir = live_guard dir (fun () -> Live.open_dir ~on_warning:live_warning dir)

let open_live_corpus ?read_only dir =
  live_guard dir (fun () -> Live_corpus.open_dir ?read_only ~on_warning:live_warning dir)

let open_shards dir = live_guard dir (fun () -> Shard_set.load_dir dir)

let read_whole_file path =
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  data

(* ------------------------------------------------------------------ *)
(* gen                                                                 *)

let gen_cmd =
  let dataset =
    Arg.(
      required
      & pos 0 (some (enum [ "retail", `Retail; "movies", `Movies; "auction", `Auction;
                            "bib", `Bib; "courses", `Courses; "paper", `Paper ])) None
      & info [] ~docv:"DATASET" ~doc:"One of retail, movies, auction, bib, courses, paper.")
  in
  let size =
    Arg.(value & opt int 0 & info [ "s"; "size" ] ~docv:"N" ~doc:"Scale (entities; 0 = default).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output file (default: stdout).")
  in
  let run dataset size seed out =
    let doc =
      match dataset with
      | `Paper -> Extract_datagen.Paper_example.document ()
      | `Retail ->
        if size > 0 then Extract_datagen.Retail.scaled ~seed size
        else Extract_datagen.Retail.(generate { default with seed })
      | `Movies ->
        if size > 0 then Extract_datagen.Movies.sized ~seed size
        else Extract_datagen.Movies.(generate { default with seed })
      | `Auction ->
        if size > 0 then Extract_datagen.Auction.sized ~seed size
        else Extract_datagen.Auction.(generate { default with seed })
      | `Bib ->
        if size > 0 then Extract_datagen.Bib.sized ~seed size
        else Extract_datagen.Bib.(generate { default with seed })
      | `Courses ->
        if size > 0 then Extract_datagen.Courses.sized ~seed size
        else Extract_datagen.Courses.(generate { default with seed })
    in
    match out with
    | Some path ->
      Extract_xml.Printer.write_file path doc;
      Printf.printf "wrote %s\n" path
    | None -> print_string (Extract_xml.Printer.document_to_string doc)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic XML dataset.")
    Term.(const run $ dataset $ size $ seed $ out)

(* ------------------------------------------------------------------ *)
(* stats                                                               *)

let stats_cmd =
  let run file =
    let db = load_db file in
    let stats = Extract_store.Doc_stats.compute (Pipeline.kinds db) in
    Format.printf "%a@." Extract_store.Doc_stats.pp stats;
    Format.printf "index: %d tokens, %d postings@."
      (Extract_store.Inverted_index.token_count (Pipeline.index db))
      (Extract_store.Inverted_index.postings_size (Pipeline.index db));
    let kinds = Pipeline.kinds db in
    let guide = Pipeline.dataguide db in
    Format.printf "@.paths:@.";
    List.iter
      (fun p ->
        Format.printf "  %-40s %-10s %6d instance(s)@."
          (Extract_store.Dataguide.path_string guide p)
          (Extract_store.Node_kind.string_of_kind (Extract_store.Node_kind.kind_of_path kinds p))
          (Extract_store.Dataguide.instance_count guide p))
      (Extract_store.Dataguide.paths guide)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Document, classification and index statistics.")
    Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* search                                                              *)

let search_cmd =
  let ranked_flag =
    Arg.(value & flag & info [ "ranked" ] ~doc:"Order results by the XRank-style score.")
  in
  let relax_flag =
    Arg.(value & flag
         & info [ "relax" ] ~doc:"Drop the rarest keywords until the query has results.")
  in
  let run file query semantics limit ranked relax =
    if Shard_set.is_shard_dir file then begin
      (* a shard directory: fan out, one domain per shard, k-way merge *)
      ignore ranked;
      if relax then prerr_endline "note: --relax is not supported for shard directories";
      let t = open_shards file in
      let hits = Shard_set.run ~semantics ?limit t query in
      Printf.printf "%d hit(s) across %d shard(s)\n" (List.length hits)
        (Shard_set.shard_count t);
      List.iteri
        (fun i (h : Shard_set.hit) ->
          let r = h.Shard_set.result.Pipeline.result in
          let doc = Result_tree.document r in
          Printf.printf "%2d. [shard %d] <%s> global node %d (%d nodes)  score=%.3f\n" (i + 1)
            h.Shard_set.shard
            (Document.tag_name doc (Result_tree.root r))
            h.Shard_set.global_root (Result_tree.size r) h.Shard_set.score)
        hits
    end
    else if Sys.is_directory file then begin
      (* a directory is a live store: hits are already scored per member *)
      ignore ranked;
      if relax then prerr_endline "note: --relax is not supported for live-store directories";
      let lc = open_live_corpus ~read_only:true file in
      let hits = Live_corpus.run ~semantics ?limit lc query in
      Printf.printf "%d hit(s)\n" (List.length hits);
      List.iteri
        (fun i (h : Live_corpus.hit) ->
          let r = h.Live_corpus.snippet.Pipeline.result in
          let doc = Result_tree.document r in
          Printf.printf "%2d. [%s] <%s> (%d nodes)  score=%.3f\n" (i + 1) h.Live_corpus.source
            (Document.tag_name doc (Result_tree.root r))
            (Result_tree.size r) h.Live_corpus.score)
        hits;
      Live_corpus.close lc
    end
    else begin
    let db = load_db file in
    let results, dropped =
      if relax then
        Extract_search.Engine.run_relaxed ~semantics (Pipeline.index db) (Pipeline.kinds db)
          (Extract_search.Query.of_string query)
      else Pipeline.search ~semantics db query, []
    in
    if dropped <> [] then
      Printf.printf "(relaxed: dropped %s)\n" (String.concat ", " dropped);
    let scored =
      if ranked then
        let ranker = Extract_search.Ranker.make (Pipeline.index db) in
        Extract_search.Ranker.rank ranker (Extract_search.Query.of_string query) results
      else List.map (fun r -> r, nan) results
    in
    let scored =
      match limit with
      | None -> scored
      | Some k -> List.filteri (fun i _ -> i < k) scored
    in
    Printf.printf "%d result(s)\n" (List.length results);
    List.iteri
      (fun i (r, score) ->
        let doc = Result_tree.document r in
        let score_str = if Float.is_nan score then "" else Printf.sprintf "  score=%.3f" score in
        Printf.printf "%2d. <%s> (%d nodes)%s\n" (i + 1)
          (Document.tag_name doc (Result_tree.root r))
          (Result_tree.size r) score_str)
      scored
    end
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Run a keyword query, list result roots.")
    Term.(const run $ file_arg $ query_arg $ semantics_arg $ limit_arg $ ranked_flag $ relax_flag)

(* ------------------------------------------------------------------ *)
(* snippet                                                             *)

let order_conv =
  let parse = function
    | "dominance" -> Ok Extract_snippet.Config.By_dominance
    | "frequency" -> Ok Extract_snippet.Config.By_frequency
    | "biased" -> Ok Extract_snippet.Config.Query_biased
    | s -> Error (`Msg (Printf.sprintf "unknown order %S (dominance|frequency|biased)" s))
  in
  Arg.conv
    ( parse,
      fun ppf o ->
        Format.pp_print_string ppf (Extract_snippet.Config.string_of_feature_order o) )

let snippet_cmd =
  let compare_flag =
    Arg.(value & flag & info [ "compare" ] ~doc:"Also show text-engine and naive baselines.")
  in
  let trace_flag =
    Arg.(value & flag
         & info [ "trace" ]
             ~doc:
               "Record spans around load, search and snippet generation and print the \
                span tree (with wall-clock durations) to stderr after the results.")
  in
  let trace_out_arg =
    Arg.(value
         & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:
               "Record spans (implies tracing) and write them to $(docv) as Chrome \
                trace-event JSON, loadable in Perfetto or chrome://tracing. Child-domain \
                spans (per-shard runs, parallel-pipeline workers) appear with their own \
                thread ids under the query span.")
  in
  let differentiate_flag =
    Arg.(value & flag
         & info [ "differentiate" ]
             ~doc:"Re-rank dominant features by cross-result distinctiveness.")
  in
  let order_arg =
    Arg.(value
         & opt order_conv Extract_snippet.Config.By_dominance
         & info [ "order" ] ~docv:"ORDER"
             ~doc:"Feature ranking: dominance (paper), frequency (strawman) or biased (query-biased).")
  in
  let explain_arg =
    Arg.(
      value
      & opt ~vopt:(Some `Text) (some (enum [ "json", `Json; "text", `Text ])) None
      & info [ "explain" ] ~docv:"FMT"
          ~doc:
            "Emit the explain bundle: per-IList-entry selection fates, dominance scores \
             and edge-budget accounting. $(docv) is json (the bundle alone, on stdout) \
             or text (appended after the snippets; the default when $(docv) is omitted).")
  in
  let run file query semantics bound limit compare_baselines differentiate order trace
      trace_out explain log_level =
    let module Trace = Extract_obs.Trace in
    let module Explain = Extract_snippet.Explain in
    apply_log_level log_level;
    let tracing = trace || trace_out <> None in
    if tracing then Trace.set_enabled true;
    (* Flush collected spans at the end of whichever branch ran: the tree
       to stderr for --trace, Chrome trace-event JSON for --trace-out. *)
    let emit_trace () =
      if tracing then begin
        let spans = Trace.finished () in
        if trace then Printf.eprintf "trace:\n%s%!" (Trace.render spans);
        (match trace_out with
        | Some path ->
          let oc = open_out path in
          output_string oc (Extract_obs.Trace_export.render spans);
          output_char oc '\n';
          close_out oc
        | None -> ());
        Trace.set_enabled false
      end
    in
    if Shard_set.is_shard_dir file then begin
      (* a shard directory: per-shard snippets, globally merged *)
      ignore (compare_baselines, differentiate, order, explain);
      let t = open_shards file in
      let hits =
        Extract_obs.Reqid.ensure (fun _rid ->
            Trace.with_span "cli.run" (fun () ->
                Shard_set.run ~semantics ~bound ?limit t query))
      in
      Printf.printf "%d hit(s) for %S, bound %d edges\n\n" (List.length hits) query bound;
      List.iteri
        (fun i (h : Shard_set.hit) ->
          let s = h.Shard_set.result in
          Printf.printf "--- hit %d [shard %d, global node %d] score=%.3f ------------\n"
            (i + 1) h.Shard_set.shard h.Shard_set.global_root h.Shard_set.score;
          print_endline (Snippet_tree.render s.Pipeline.selection.Selector.snippet);
          Printf.printf "(%d/%d IList items, %d edges)\n\n"
            (Selector.covered_count s.Pipeline.selection)
            (Ilist.length s.Pipeline.ilist)
            (Snippet_tree.edge_count s.Pipeline.selection.Selector.snippet))
        hits;
      emit_trace ()
    end
    else if Sys.is_directory file then begin
      (* a directory is a live store; the flags tied to single-database
         explain plumbing do not apply there *)
      ignore (compare_baselines, differentiate, order, explain);
      let lc = open_live_corpus ~read_only:true file in
      let hits =
        Extract_obs.Reqid.ensure (fun _rid ->
            Trace.with_span "cli.run" (fun () ->
                Live_corpus.run ~semantics ~bound ?limit lc query))
      in
      Printf.printf "%d hit(s) for %S, bound %d edges\n\n" (List.length hits) query bound;
      List.iteri
        (fun i (h : Live_corpus.hit) ->
          let s = h.Live_corpus.snippet in
          Printf.printf "--- hit %d [%s] score=%.3f --------------------------\n" (i + 1)
            h.Live_corpus.source h.Live_corpus.score;
          print_endline (Snippet_tree.render s.Pipeline.selection.Selector.snippet);
          Printf.printf "(%d/%d IList items, %d edges)\n\n"
            (Selector.covered_count s.Pipeline.selection)
            (Ilist.length s.Pipeline.ilist)
            (Snippet_tree.edge_count s.Pipeline.selection.Selector.snippet))
        hits;
      Live_corpus.close lc;
      emit_trace ()
    end
    else begin
    let db = Trace.with_span "cli.load" (fun () -> load_db file) in
    let config = { Extract_snippet.Config.default with Extract_snippet.Config.feature_order = order } in
    let print_results results =
      Printf.printf "%d result(s) for %S, bound %d edges\n\n" (List.length results) query
        bound;
      let q = Extract_search.Query.of_string query in
      List.iteri
        (fun i (r : Pipeline.snippet_result) ->
          Printf.printf "--- result %d -------------------------------------\n" (i + 1);
          print_endline (Snippet_tree.render r.selection.snippet);
          Printf.printf "(%d/%d IList items, %d edges)\n\n"
            (Selector.covered_count r.selection)
            (Ilist.length r.ilist)
            (Snippet_tree.edge_count r.selection.snippet);
          if compare_baselines then begin
            let text =
              Extract_snippet.Text_baseline.generate
                ~window_tokens:(Extract_snippet.Text_baseline.window_for_bound bound)
                r.result q
            in
            Printf.printf "text baseline:  %s\n" (Extract_snippet.Text_baseline.to_string text);
            let naive = Extract_snippet.Naive_baseline.generate ~bound r.result in
            Printf.printf "naive baseline:\n%s\n\n" (Snippet_tree.render naive)
          end)
        results
    in
    (* one CLI invocation = one query: give it a request id here so the
       cli.run span, the pipeline's log lines and the explain bundle all
       carry the same id *)
    Extract_obs.Reqid.ensure (fun _rid ->
        match explain with
        | None ->
          print_results
            (Trace.with_span "cli.run" (fun () ->
                 if differentiate then
                   Pipeline.run_differentiated ~semantics ~config ~bound ?limit db query
                 else Pipeline.run ~semantics ~config ~bound ?limit db query))
        | Some fmt ->
          let results, bundle =
            Trace.with_span "cli.run" (fun () ->
                Explain.run ~semantics ~config ~bound ?limit
                  ~differentiated:differentiate db query)
          in
          (match fmt with
          | `Json ->
            (* the bundle alone: stdout stays machine-readable *)
            print_endline (Explain.render_json bundle)
          | `Text ->
            print_results results;
            print_string (Explain.to_text bundle)));
    emit_trace ()
    end
  in
  Cmd.v
    (Cmd.info "snippet" ~doc:"Generate snippets for a keyword query (the demo flow).")
    Term.(
      const run $ file_arg $ query_arg $ semantics_arg $ bound_arg $ limit_arg $ compare_flag
      $ differentiate_flag $ order_arg $ trace_flag $ trace_out_arg $ explain_arg
      $ log_level_arg)

(* ------------------------------------------------------------------ *)
(* explain                                                             *)

let explain_cmd =
  let run file query semantics limit =
    let db = load_db file in
    let q = Extract_search.Query.of_string query in
    let results = Pipeline.search ~semantics ?limit db query in
    List.iteri
      (fun i r ->
        Printf.printf "--- result %d: IList -------------------------------\n" (i + 1);
        let ilist = Pipeline.ilist_of db r q in
        List.iter
          (fun (e : Ilist.entry) ->
            let kind, detail =
              match e.item with
              | Ilist.Keyword k -> "keyword", k
              | Ilist.Entity_name n -> "entity", n
              | Ilist.Result_key v -> "key", v
              | Ilist.Dominant_feature (f, s) ->
                ( "feature",
                  Format.asprintf "%a DS=%.2f (N=%d/%d D=%d)" Feature.pp f s.Feature.score
                    s.Feature.occurrences s.Feature.type_total s.Feature.domain_size )
            in
            Printf.printf "%2d. %-8s %-50s %d instance(s)\n" e.rank kind detail
              (Array.length e.instances))
          (Ilist.entries ilist);
        print_newline ())
      results
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the ranked IList of each query result (Fig. 3 view).")
    Term.(const run $ file_arg $ query_arg $ semantics_arg $ limit_arg)

(* ------------------------------------------------------------------ *)
(* save                                                                *)

let save_cmd =
  let out =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc:"Output arena file.")
  in
  let index_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "index" ] ~docv:"FILE"
          ~doc:
            "Write the inverted index separately to $(docv); OUT then holds the bare \
             arena. The pair can be validated with $(b,extract check --index).")
  in
  let run file out index_out =
    let db = load_db file in
    (match index_out with
    | None -> Pipeline.save out db
    | Some ipath ->
      Extract_store.Persist.save out (Pipeline.document db);
      Extract_store.Persist.save_index ipath (Pipeline.index db));
    Printf.printf "wrote %s (%d nodes, %d tokens)\n" out
      (Extract_store.Document.node_count (Pipeline.document db))
      (Extract_store.Inverted_index.token_count (Pipeline.index db));
    Option.iter (fun ipath -> Printf.printf "wrote %s (index)\n" ipath) index_out
  in
  Cmd.v
    (Cmd.info "save"
       ~doc:"Persist a parsed, indexed database as one binary bundle (fast reload).")
    Term.(const run $ file_arg $ out $ index_out)

(* ------------------------------------------------------------------ *)
(* pack                                                                *)

let pack_cmd =
  let out =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUT"
          ~doc:"Output snapshot file, or output directory with $(b,--shards) above 1.")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Split the corpus into $(docv) shards (contiguous groups of the root's \
             children, roughly equal node weight) and write OUT as a directory: one \
             snapshot per shard plus a sealed $(b,shards.manifest). Such a directory is \
             accepted by $(b,search), $(b,snippet), $(b,check) and $(b,serve), which fan \
             queries out one domain per shard.")
  in
  let file_size path =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    close_in ic;
    n
  in
  let run file out shards =
    if shards < 1 then begin
      prerr_endline "error: --shards must be at least 1";
      exit 2
    end;
    let db = load_db file in
    let index = Pipeline.index db in
    if shards = 1 then begin
      Pipeline.save_snapshot out db;
      Printf.printf "wrote %s (%d nodes, %d tokens, %d bytes, index %d -> %d posting bytes)\n"
        out
        (Extract_store.Document.node_count (Pipeline.document db))
        (Extract_store.Inverted_index.token_count index)
        (file_size out)
        (Extract_store.Inverted_index.postings_bytes index)
        (Extract_store.Inverted_index.postings_bytes
           (Extract_store.Inverted_index.pack index))
    end
    else begin
      let t = Shard_set.split ~shards (Pipeline.document db) in
      Shard_set.save_dir out t;
      Printf.printf "wrote %s: %d shard(s)\n" out (Shard_set.shard_count t);
      for i = 0 to Shard_set.shard_count t - 1 do
        let g0, g1 = Shard_set.provenance t i in
        let snap = Filename.concat out (Printf.sprintf "shard-%02d.snap" i) in
        Printf.printf "  shard %d: nodes %d..%d (%d), %d bytes\n" i g0 g1 (g1 - g0 + 1)
          (file_size snap)
      done
    end
  in
  Cmd.v
    (Cmd.info "pack"
       ~doc:
         "Persist a database as a v2 mmap snapshot: block-compressed postings and a flat \
          arena the next load maps in O(1) instead of decoding. Validate with $(b,extract \
          check); deep verification spends the per-section checksums the fast load path \
          skips.")
    Term.(const run $ file_arg $ out $ shards_arg)

(* ------------------------------------------------------------------ *)
(* demo                                                                *)

let demo_cmd =
  let out =
    Arg.(value & opt string "extract-results.html"
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output HTML file.")
  in
  let run file query semantics bound limit out =
    let db = load_db file in
    let results = Pipeline.run ~semantics ~bound ?limit db query in
    Extract_snippet.Html_view.write_page ~path:out ~query ~bound results;
    Printf.printf "wrote %s (%d results)\n" out (List.length results)
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Render the Fig. 5 demo page: snippets with full results, as HTML.")
    Term.(const run $ file_arg $ query_arg $ semantics_arg $ bound_arg $ limit_arg $ out)

(* ------------------------------------------------------------------ *)
(* view                                                                *)

let view_cmd =
  let path_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"PATH" ~doc:"XPath-like selector, e.g. //store[city=\"Houston\"].")
  in
  let run file path =
    let db = load_db file in
    let doc = Pipeline.document db in
    match Extract_store.Path_query.select_string doc path with
    | exception Invalid_argument msg -> prerr_endline msg; exit 1
    | [] -> print_endline "no match"
    | nodes ->
      Printf.printf "%d match(es)\n" (List.length nodes);
      List.iteri
        (fun i n ->
          Printf.printf "--- match %d ---\n%s\n" (i + 1)
            (Extract_xml.Printer.to_string (Extract_store.Document.to_xml doc n)))
        (List.filteri (fun i _ -> i < 10) nodes)
  in
  Cmd.v
    (Cmd.info "view" ~doc:"Select and print document fragments with an XPath-like path.")
    Term.(const run $ file_arg $ path_arg)

(* ------------------------------------------------------------------ *)
(* add / remove / compact / live                                       *)

let dir_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"DIR" ~doc:"Live-store directory (created by the first $(b,add)).")

let add_cmd =
  let xml_file =
    Arg.(
      required & pos 1 (some file) None & info [] ~docv:"FILE" ~doc:"XML document to add.")
  in
  let name_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "name" ] ~docv:"NAME" ~doc:"Member name (default: $(i,FILE)'s basename).")
  in
  let run dir file name =
    let name = match name with Some n -> n | None -> Filename.basename file in
    let xml = read_whole_file file in
    let store = open_live dir in
    live_guard dir (fun () -> Live.add store ~name ~xml);
    let members = List.length (Live.member_names (Live.view store)) in
    Live.close store;
    Printf.printf "added %s to %s (%d member(s))\n" name dir members
  in
  Cmd.v
    (Cmd.info "add"
       ~doc:
         "Add (or replace) a document in a live-store directory. The update is journalled \
          and fsync'd before it is acknowledged: a crash at any instant leaves the store \
          recoverable to the state before or after the add, never in between.")
    Term.(const run $ dir_arg $ xml_file $ name_arg)

let remove_cmd =
  let name_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NAME" ~doc:"Member name.")
  in
  let run dir name =
    let store = open_live dir in
    let removed = live_guard dir (fun () -> Live.remove store name) in
    Live.close store;
    if removed then Printf.printf "removed %s from %s\n" name dir
    else begin
      Printf.eprintf "error: %s has no member %S\n%!" dir name;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "remove" ~doc:"Remove a document from a live-store directory (journalled).")
    Term.(const run $ dir_arg $ name_arg)

let compact_cmd =
  let run dir =
    let store = open_live dir in
    let generation = live_guard dir (fun () -> Live.compact store) in
    let members = List.length (Live.member_names (Live.view store)) in
    Live.close store;
    Printf.printf "compacted %s to generation %d (%d member(s))\n" dir generation members
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:
         "Fold a live store's journalled updates into a fresh snapshot generation \
          (atomic temp+fsync+rename) and reset the journal to a checkpoint.")
    Term.(const run $ dir_arg)

let live_cmd =
  let run dir =
    let store = live_guard dir (fun () -> Live.open_dir ~read_only:true ~on_warning:live_warning dir) in
    let view = Live.view store in
    let records, _ = live_guard dir (fun () -> Extract_store.Journal.read (Live.journal_path dir)) in
    let pending = List.length (Extract_store.Journal.records_after_checkpoint records) in
    Printf.printf "generation %d, %d member(s), %d journalled update(s) since last compact\n"
      view.Live.generation
      (List.length (Live.member_names view))
      pending;
    List.iter (fun name -> Printf.printf "  %s\n" name) (Live.member_names view);
    Live.close store
  in
  Cmd.v
    (Cmd.info "live" ~doc:"Show a live-store directory's generation, members and journal depth.")
    Term.(const run $ dir_arg)

(* ------------------------------------------------------------------ *)
(* check                                                               *)

let check_cmd =
  let queries =
    Arg.(
      value
      & opt_all string []
      & info [ "q"; "query" ] ~docv:"QUERY"
          ~doc:
            "Also validate search results and snippets for $(docv) (repeatable). Without it, \
             a deterministic probe workload derived from the index vocabulary is used.")
  in
  let index_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "index" ] ~docv:"FILE"
          ~doc:
            "Validate $(docv) as the index persisted for the positional arena/XML file: \
             seals (magic, version, checksum) and the recorded arena fingerprint, catching \
             a mismatched arena/index pair.")
  in
  let fail issues =
    List.iter (fun i -> print_endline (Check.issue_to_string i)) issues;
    Printf.printf "FAILED: %d invariant violation(s)\n" (List.length issues);
    exit 1
  in
  let sniff_head path =
    let ic = open_in_bin path in
    let head =
      try really_input_string ic (min (in_channel_length ic) 16)
      with e ->
        close_in_noerr ic;
        raise e
    in
    close_in ic;
    Extract_store.Persist.sniff_magic head
  in
  let run file index queries =
    if Shard_set.is_shard_dir file then begin
      (* a shard directory: deep-verify every snapshot, then the manifest *)
      ignore queries;
      (match index with
      | Some _ -> prerr_endline "note: --index is ignored for shard directories"
      | None -> ());
      let snaps =
        Sys.readdir file |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".snap")
        |> List.sort String.compare
      in
      let issues =
        List.concat_map (fun f -> Check.check_snapshot (Filename.concat file f)) snaps
      in
      (match issues with [] -> () | issues -> fail issues);
      match Shard_set.load_dir file with
      | t ->
        Printf.printf "ok: shard directory %s is consistent (%d shard(s), %d snapshot(s) verified)\n"
          file (Shard_set.shard_count t) (List.length snaps)
      | exception Extract_store.Codec.Corrupt msg ->
        fail [ { Check.area = "snapshot"; what = Printf.sprintf "%s: %s" file msg } ]
      | exception Extract_store.Codec.Truncated msg ->
        fail [ { Check.area = "snapshot"; what = Printf.sprintf "%s: truncated: %s" file msg } ]
    end
    else if Sys.is_directory file then begin
      (* a directory is a live store: validate journal/snapshot agreement
         and the recovered content instead of a single artifact *)
      ignore queries;
      (match index with
      | Some _ -> prerr_endline "note: --index is ignored for live-store directories"
      | None -> ());
      let issues, notes = Check.check_live file in
      List.iter (fun n -> Printf.printf "note: %s\n" n) notes;
      match issues with
      | [] ->
        Printf.printf "ok: live store %s is consistent%s\n" file
          (if notes = [] then "" else " (benign crash leftovers pending repair)")
      | issues -> fail issues
    end
    else begin
    (match index with
    | None -> ()
    | Some index -> (
      match Check.check_pair ~arena:file ~index with
      | [] -> Printf.printf "ok: %s and %s are a sealed, matching pair\n" file index
      | issues -> fail issues));
    (* a v2 snapshot gets the deep pass load skips: every recorded
       section digest is spent and the fingerprint re-derived *)
    (match sniff_head file with
    | Some m when m = Extract_store.Snapshot.magic -> (
      match Check.check_snapshot file with
      | [] -> Printf.printf "ok: snapshot %s passes deep verification\n" file
      | issues -> fail issues)
    | Some _ | None -> ()
    | exception _ -> ());
    match load_db_raw file with
    | exception Extract_store.Codec.Corrupt msg ->
      fail [ { Check.area = "persist"; what = Printf.sprintf "%s: %s" file msg } ]
    | exception Extract_store.Codec.Truncated msg ->
      fail [ { Check.area = "persist"; what = Printf.sprintf "%s: truncated: %s" file msg } ]
    | exception Extract_xml.Error.Parse_error (pos, msg) ->
      fail
        [ { Check.area = "xml"; what = Printf.sprintf "%s: %s" file (Extract_xml.Error.to_string pos msg) } ]
    | db -> (
      let queries =
        match queries with
        | [] -> Check.probe_queries db
        | qs -> qs
      in
      Printf.printf "checking %s: %d nodes, %d tokens, %d paths, %d probe quer%s\n" file
        (Document.node_count (Pipeline.document db))
        (Extract_store.Inverted_index.token_count (Pipeline.index db))
        (Extract_store.Dataguide.path_count (Pipeline.dataguide db))
        (List.length queries)
        (if List.length queries = 1 then "y" else "ies");
      match Check.all ~queries db with
      | [] -> print_endline "ok: all invariants hold"
      | issues -> fail issues)
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Verify structural invariants (fsck) of a dataset, arena or bundle: document order, \
          interval nesting, posting-list sortedness and agreement, dataguide consistency, \
          snippet well-formedness; with $(b,--index), also the seal and arena fingerprint \
          of a persisted arena/index pair.")
    Term.(const run $ file_arg $ index_file $ queries)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

let serve_cmd =
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE" ~doc:"XML files to serve.")
  in
  let live_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "live" ] ~docv:"DIR"
          ~doc:
            "Also serve the live-store directory $(docv): enables the POST \
             /admin/add|remove|compact update routes and GET /live, /live/search. \
             Updates are journalled and fsync'd before they are acknowledged.")
  in
  let port =
    Arg.(value & opt int 8080 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port (0 = pick one).")
  in
  let timeout_ms =
    Arg.(
      value
      & opt int Extract_server.Demo_server.default_config.Extract_server.Demo_server.timeout_ms
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-connection socket read/write timeout in milliseconds (slowloris \
             protection); 0 disables.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request snippet budget in milliseconds: results reached after expiry get \
             baseline snippets tagged degraded; a request whose budget is spent before \
             search starts is shed with 503.")
  in
  let workers =
    Arg.(
      value
      & opt int Extract_server.Demo_server.default_config.Extract_server.Demo_server.workers
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker domains in the serving pool; each runs connections to completion, so N \
             bounds concurrently-served connections. Use the machine's core count for \
             throughput.")
  in
  let queue_depth =
    Arg.(
      value
      & opt int
          Extract_server.Demo_server.default_config.Extract_server.Demo_server.queue_depth
      & info [ "queue-depth" ] ~docv:"K"
          ~doc:
            "Accepted connections allowed to wait for a worker; beyond K the acceptor sheds \
             with 503 + Retry-After.")
  in
  let run files live shards port timeout_ms deadline_ms workers queue_depth log_level =
    apply_log_level log_level;
    if files = [] && live = None then begin
      prerr_endline "error: nothing to serve (give XML files, a shard directory, --live DIR, or both)";
      exit 2
    end;
    let live = Option.map open_live_corpus live in
    (* a positional argument that is a shard directory attaches the
       /shards routes instead of joining the corpus *)
    let shard_dirs, files = List.partition Shard_set.is_shard_dir files in
    let sharded =
      match shard_dirs with
      | [] -> None
      | d :: rest ->
        List.iter
          (fun d -> Printf.eprintf "note: ignoring extra shard directory %s\n%!" d)
          rest;
        Some (open_shards d)
    in
    let sharded =
      match sharded, files with
      | Some _, _ | None, [] -> sharded
      | None, first :: _ when shards > 1 ->
        (* split the first data set on the fly *)
        Some (Shard_set.split ~shards (Pipeline.document (load_db first)))
      | None, _ -> None
    in
    let corpus =
      List.fold_left
        (fun corpus file ->
          let name = Filename.remove_extension (Filename.basename file) in
          Extract_snippet.Corpus.add corpus ~name (load_db file))
        Extract_snippet.Corpus.empty files
    in
    let config =
      {
        Extract_server.Demo_server.default_config with
        Extract_server.Demo_server.timeout_ms;
        deadline_ms;
        workers;
        queue_depth;
      }
    in
    Extract_server.Demo_server.serve ~config
      (Extract_server.Demo_server.create ?live ?sharded corpus)
      ~port
  in
  let shards_serve_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Split the first data set into $(docv) shards and enable the /shards and \
             /shards/search routes (per-shard query fan-out, one domain per shard). A \
             positional argument that is a shard directory written by $(b,extract pack \
             --shards) attaches the same routes without splitting at startup.")
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the demo web service (the paper's Fig. 5 site) over XML files.")
    Term.(
      const run $ files $ live_arg $ shards_serve_arg $ port $ timeout_ms $ deadline_ms
      $ workers $ queue_depth $ log_level_arg)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc = "snippet generation for XML keyword search (eXtract, VLDB'08)" in
  Cmd.group (Cmd.info "extract" ~version:Extract_obs.Registry.version ~doc)
    [ gen_cmd; stats_cmd; search_cmd; snippet_cmd; explain_cmd; save_cmd; pack_cmd; demo_cmd;
      view_cmd; add_cmd; remove_cmd; compact_cmd; live_cmd; check_cmd; serve_cmd ]

let () = exit (Cmd.eval main_cmd)
